package obs

import (
	"context"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/units"
)

// sloFixture builds a tracker over manual counters and a manual clock.
type sloFixture struct {
	t        *SLOTracker
	clock    time.Time
	requests atomic.Int64
	bad      atomic.Int64
	hist     *Histogram
}

func newSLOFixture(cfg SLOConfig) *sloFixture {
	f := &sloFixture{hist: NewHistogram(nil)}
	f.clock = time.Unix(1000, 0)
	f.t = &SLOTracker{
		cfg:      cfg.withDefaults(),
		requests: f.requests.Load,
		bad:      f.bad.Load,
		hist:     f.hist,
	}
	f.t.now = func() time.Time { return f.clock }
	f.t.Sample() // creation baseline, as NewSLOTracker records
	return f
}

func (f *sloFixture) serve(n int64, bad int64, lat units.Seconds) {
	f.requests.Add(n)
	f.bad.Add(bad)
	for i := int64(0); i < n; i++ {
		f.hist.Observe(lat)
	}
}

func TestSLOReportCleanTraffic(t *testing.T) {
	f := newSLOFixture(SLOConfig{Windows: []time.Duration{time.Minute}})
	f.serve(100, 0, 1e-3) // 100 fast, clean requests
	f.clock = f.clock.Add(30 * time.Second)

	rep := f.t.Report()
	if len(rep.Windows) != 1 {
		t.Fatalf("windows = %+v", rep.Windows)
	}
	w := rep.Windows[0]
	if w.Requests != 100 || w.Bad != 0 {
		t.Fatalf("requests/bad = %d/%d, want 100/0", w.Requests, w.Bad)
	}
	if w.Availability != 1 || w.AvailabilityBurnRate != 0 {
		t.Fatalf("availability %v burn %v, want 1 and 0", w.Availability, w.AvailabilityBurnRate)
	}
	if w.LatencyCompliance != 1 || w.LatencyBurnRate != 0 {
		t.Fatalf("latency %v burn %v, want 1 and 0", w.LatencyCompliance, w.LatencyBurnRate)
	}
	if w.CoverageSeconds != 30 {
		t.Fatalf("coverage = %v, want 30 (young process)", w.CoverageSeconds)
	}
}

func TestSLOBurnRates(t *testing.T) {
	cfg := SLOConfig{
		AvailabilityObjective: 0.999,
		LatencyObjective:      0.99,
		LatencyThreshold:      0.05,
		Windows:               []time.Duration{time.Minute},
	}
	f := newSLOFixture(cfg)
	// 1000 requests: 10 bad (1% error, 10x the 0.1% budget), 100 slow
	// (10% slow, 10x the 1% latency budget).
	f.serve(890, 0, 1e-3)
	f.serve(10, 10, 1e-3)
	f.serve(100, 0, 0.2)
	f.clock = f.clock.Add(20 * time.Second)

	w := f.t.Report().Windows[0]
	if w.Requests != 1000 || w.Bad != 10 {
		t.Fatalf("requests/bad = %d/%d", w.Requests, w.Bad)
	}
	if got, want := w.AvailabilityBurnRate, 0.01/0.001; math.Abs(got-want) > 1e-9 {
		t.Fatalf("availability burn = %v, want %v", got, want)
	}
	if got, want := w.Availability, 0.99; math.Abs(got-want) > 1e-9 {
		t.Fatalf("availability = %v, want %v", got, want)
	}
	if got, want := w.LatencyBurnRate, 0.1/0.01; math.Abs(got-want) > 1e-9 {
		t.Fatalf("latency burn = %v, want %v", got, want)
	}
	if got, want := w.LatencyCompliance, 0.9; math.Abs(got-want) > 1e-9 {
		t.Fatalf("latency compliance = %v, want %v", got, want)
	}
}

func TestSLOWindowing(t *testing.T) {
	f := newSLOFixture(SLOConfig{Windows: []time.Duration{time.Minute, 5 * time.Minute}})

	// Minute 0–4: an error burst. Then 2 minutes of clean traffic, sampling
	// every 30s like the production loop.
	f.serve(100, 50, 1e-3)
	for i := 0; i < 4; i++ {
		f.clock = f.clock.Add(30 * time.Second)
		f.t.Sample()
	}
	for i := 0; i < 4; i++ {
		f.clock = f.clock.Add(30 * time.Second)
		f.serve(25, 0, 1e-3)
		f.t.Sample()
	}

	rep := f.t.Report()
	oneMin, fiveMin := rep.Windows[0], rep.Windows[1]
	// The last minute saw only clean traffic (two 25-request batches).
	if oneMin.Bad != 0 {
		t.Fatalf("1m window bad = %d, want 0 (burst aged out)", oneMin.Bad)
	}
	if oneMin.Requests != 50 {
		t.Fatalf("1m window requests = %d, want 50", oneMin.Requests)
	}
	// The 5-minute window still covers the burst.
	if fiveMin.Bad != 50 {
		t.Fatalf("5m window bad = %d, want 50", fiveMin.Bad)
	}
	if fiveMin.AvailabilityBurnRate <= oneMin.AvailabilityBurnRate {
		t.Fatalf("5m burn %v should exceed 1m burn %v",
			fiveMin.AvailabilityBurnRate, oneMin.AvailabilityBurnRate)
	}
}

func TestSLORingBound(t *testing.T) {
	f := newSLOFixture(SLOConfig{MaxSamples: 4, Windows: []time.Duration{time.Hour}})
	for i := 0; i < 10; i++ {
		f.clock = f.clock.Add(time.Second)
		f.serve(1, 0, 1e-3)
		f.t.Sample()
	}
	f.t.mu.Lock()
	n := len(f.t.samples)
	f.t.mu.Unlock()
	if n != 4 {
		t.Fatalf("ring holds %d samples, want 4", n)
	}
	// All samples predate nothing here, but the hour window exceeds the
	// ring's span: the report falls back to the oldest retained sample.
	w := f.t.Report().Windows[0]
	if w.Requests != 3 { // 10 total − 7 at the oldest retained sample
		t.Fatalf("requests over truncated window = %d, want 3", w.Requests)
	}
}

func TestSLOTrackerRun(t *testing.T) {
	var reqs atomic.Int64
	tr := NewSLOTracker(SLOConfig{}, reqs.Load, func() int64 { return 0 }, nil)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { tr.Run(ctx, time.Millisecond); close(done) }()
	deadline := time.After(2 * time.Second)
	for {
		tr.mu.Lock()
		n := len(tr.samples)
		tr.mu.Unlock()
		if n >= 3 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("Run produced no samples")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not stop on ctx cancel")
	}
}

func TestSLOReportNoLatencyHistogram(t *testing.T) {
	var reqs atomic.Int64
	tr := NewSLOTracker(SLOConfig{Windows: []time.Duration{time.Minute}},
		reqs.Load, func() int64 { return 0 }, nil)
	reqs.Add(10)
	w := tr.Report().Windows[0]
	if w.LatencyCompliance != 1 || w.LatencyBurnRate != 0 {
		t.Fatalf("nil-histogram latency report = %+v, want neutral", w)
	}
}
