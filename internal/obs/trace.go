package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span tracing. A Tracer collects hierarchical spans — named, timed regions
// with string arguments — and exports them as Chrome trace-event JSON
// (the `{"traceEvents": [...]}` format Perfetto and chrome://tracing load).
//
// Hierarchy is explicit, not goroutine-inferred: a span started from the
// tracer opens a new track (Chrome "thread"), and Child spans share their
// parent's track. Nested spans on one track render as a flame graph;
// concurrent pipeline stages each take a track of their own. That keeps the
// model deterministic and free of runtime goroutine-ID hacks.

// Arg is one key/value annotation on a span.
type Arg struct {
	Key string `json:"k"`
	Val string `json:"v"`
}

// TraceEvent is one completed span. The json tags define the per-process
// wire format /tracez.json serves (see ProcessTrace); durations travel as
// integer nanoseconds.
type TraceEvent struct {
	Name  string        `json:"name"`
	Cat   string        `json:"cat"`
	Track int64         `json:"track"`
	Start time.Duration `json:"start_ns"` // offset from the tracer epoch
	Dur   time.Duration `json:"dur_ns"`
	Args  []Arg         `json:"args,omitempty"`
}

// PhaseCat is the category cmd-level phases use; timing reports filter on it.
const PhaseCat = "phase"

// TaskCat is the category library-internal spans use.
const TaskCat = "task"

// RequestCat is the category of one whole served request (proxy hop or
// replica handler).
const RequestCat = "request"

// StageCat is the category of one stage inside a served request (parse,
// cache, compile, predict, render, admission, upstream wait...).
const StageCat = "stage"

// defaultMaxEvents bounds a tracer's buffer; completed spans beyond it are
// counted in Dropped instead of retained, so long collection sweeps cannot
// grow memory without bound.
const defaultMaxEvents = 1 << 20

// Tracer accumulates completed spans. Safe for concurrent use.
type Tracer struct {
	epoch time.Time
	// now returns the current offset from the epoch; tests substitute a
	// deterministic clock.
	now func() time.Duration

	mu        sync.Mutex
	events    []TraceEvent
	maxEvents int
	dropped   int64
	nextTrack int64
}

// NewTracer returns a tracer whose epoch is now.
func NewTracer() *Tracer {
	t := &Tracer{epoch: time.Now(), maxEvents: defaultMaxEvents}
	t.now = func() time.Duration { return time.Since(t.epoch) }
	return t
}

// Epoch returns the tracer's time origin. Merging traces from several
// processes needs it: each process's event offsets are relative to its own
// epoch, and the merge shifts them onto the earliest one.
func (t *Tracer) Epoch() time.Time { return t.epoch }

// Now returns the current offset from the epoch — the clock Complete events
// are timed with. Nil-safe (returns 0).
func (t *Tracer) Now() time.Duration {
	if t == nil {
		return 0
	}
	return t.now()
}

// Start opens a top-level span on a fresh track.
func (t *Tracer) Start(name, cat string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.nextTrack++
	track := t.nextTrack
	t.mu.Unlock()
	return &Span{tracer: t, name: name, cat: cat, track: track, start: t.now()}
}

// Complete records an externally timed event (e.g. a profiler kernel
// timeline replayed onto the trace) without the Start/End protocol.
func (t *Tracer) Complete(ev TraceEvent) {
	if t == nil {
		return
	}
	t.add(ev)
}

// ReserveTrack allocates a track number for Complete events.
func (t *Tracer) ReserveTrack() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextTrack++
	return t.nextTrack
}

func (t *Tracer) add(ev TraceEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.events) >= t.maxEvents {
		t.dropped++
		return
	}
	t.events = append(t.events, ev)
}

// Events returns a copy of the completed spans sorted by (start, track,
// name) — a deterministic order for reports and encoders.
func (t *Tracer) Events() []TraceEvent {
	t.mu.Lock()
	out := make([]TraceEvent, len(t.events))
	copy(out, t.events)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		return a.Name < b.Name
	})
	return out
}

// Dropped reports how many spans the buffer cap discarded. Nil-safe, so the
// obs_trace_dropped_total gauge can read it with no tracer installed.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

func init() {
	// Drops used to be silent; surfacing them as a metric means a scrape (or
	// /metricsz aggregation) shows when a trace is incomplete.
	Default().GaugeFunc("obs_trace_dropped_total",
		"Completed spans discarded because the installed tracer's buffer was full.",
		func() int64 { return CurrentTracer().Dropped() })
}

// Span is one open region. A nil *Span is a valid no-op, which is what
// StartSpan returns when no tracer is installed.
type Span struct {
	tracer *Tracer
	name   string
	cat    string
	track  int64
	start  time.Duration
	args   []Arg

	mu    sync.Mutex
	ended bool
}

// Child opens a sub-span on the same track.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{tracer: s.tracer, name: name, cat: s.cat, track: s.track, start: s.tracer.now()}
}

// SetArg annotates the span. Call before End.
func (s *Span) SetArg(key, val string) {
	if s == nil {
		return
	}
	s.args = append(s.args, Arg{Key: key, Val: val})
}

// End completes the span and records it. Idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.mu.Unlock()
	s.tracer.add(TraceEvent{
		Name:  s.name,
		Cat:   s.cat,
		Track: s.track,
		Start: s.start,
		Dur:   s.tracer.now() - s.start,
		Args:  s.args,
	})
}

// globalTracer is the installed tracer; nil means spans are no-ops.
var globalTracer atomic.Pointer[Tracer]

// SetTracer installs (or, with nil, removes) the global tracer.
func SetTracer(t *Tracer) { globalTracer.Store(t) }

// CurrentTracer returns the installed tracer, or nil.
func CurrentTracer() *Tracer { return globalTracer.Load() }

// StartSpan opens a library-internal span on the global tracer. With no
// tracer installed the cost is one atomic pointer load and the returned nil
// span makes every method a no-op.
func StartSpan(name string) *Span {
	return CurrentTracer().Start(name, TaskCat)
}

// StartPhase opens a command-level phase span on the global tracer; -timing
// reports print phase spans only.
func StartPhase(name string) *Span {
	return CurrentTracer().Start(name, PhaseCat)
}
