package obs

import (
	"os"
	"sync/atomic"
	"time"
)

// Trace context: W3C-traceparent-style identifiers that tie one request's
// spans together across processes. The fleet proxy mints a SpanContext for
// each sampled request, sends it to the replica in a `traceparent` header,
// and echoes the trace ID back to the client in `X-Trace-Id`; the replica
// records its per-stage spans under the same trace ID, so the merged
// timeline (WriteChromeTraceMerged) shows the proxy hop and the replica
// stages as one request.
//
// The wire format follows the W3C recommendation's version-00 shape:
//
//	00-<32 lowercase hex trace-id>-<16 lowercase hex span-id>-<2 hex flags>
//
// exactly 55 bytes. Parsing is strict — wrong length, wrong dashes, upper
// case, an unknown version, or an all-zero trace/span ID all reject — so a
// malformed header degrades to "unsampled" instead of propagating garbage.

// traceparentLen is the exact length of a version-00 traceparent header.
const traceparentLen = 55

// FlagSampled is the traceparent flags bit marking a sampled request.
const FlagSampled = 0x01

// SpanContext identifies one span within one trace. The 128-bit trace ID is
// carried as two uint64 halves; the zero value is invalid by construction
// (all-zero IDs are reserved by the format).
type SpanContext struct {
	TraceHi, TraceLo uint64
	SpanID           uint64
	Flags            uint8
}

// Valid reports whether both the trace ID and the span ID are non-zero.
func (c SpanContext) Valid() bool {
	return (c.TraceHi != 0 || c.TraceLo != 0) && c.SpanID != 0
}

// idState seeds the process-local splitmix64 ID generator. Seeding from the
// clock and the PID keeps independently started replicas from colliding.
var idState atomic.Uint64

func init() {
	idState.Store(uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<32)
}

// nextID returns the next splitmix64 output: an atomic add of the golden
// ratio increment followed by the mix64 finalizer. Never zero (the format
// reserves all-zero IDs).
func nextID() uint64 {
	for {
		x := idState.Add(0x9e3779b97f4a7c15)
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		if x != 0 {
			return x
		}
	}
}

// NewSpanContext mints a fresh sampled trace: new trace ID, new root span.
func NewSpanContext() SpanContext {
	return SpanContext{TraceHi: nextID(), TraceLo: nextID(), SpanID: nextID(), Flags: FlagSampled}
}

// Child returns a context in the same trace with a fresh span ID — the
// per-hop identity a propagating proxy or a receiving server uses.
func (c SpanContext) Child() SpanContext {
	c.SpanID = nextID()
	return c
}

const hexDigits = "0123456789abcdef"

// appendHex64 appends x as 16 lowercase hex digits.
func appendHex64(dst []byte, x uint64) []byte {
	for shift := 60; shift >= 0; shift -= 4 {
		dst = append(dst, hexDigits[(x>>uint(shift))&0xf])
	}
	return dst
}

// AppendTraceparent appends the version-00 header form of c to dst.
func (c SpanContext) AppendTraceparent(dst []byte) []byte {
	dst = append(dst, '0', '0', '-')
	dst = appendHex64(dst, c.TraceHi)
	dst = appendHex64(dst, c.TraceLo)
	dst = append(dst, '-')
	dst = appendHex64(dst, c.SpanID)
	dst = append(dst, '-', hexDigits[(c.Flags>>4)&0xf], hexDigits[c.Flags&0xf])
	return dst
}

// Traceparent renders the header value: 00-<trace>-<span>-<flags>.
func (c SpanContext) Traceparent() string {
	return string(c.AppendTraceparent(make([]byte, 0, traceparentLen)))
}

// TraceID renders the 32-hex-digit trace identifier (the X-Trace-Id echo).
func (c SpanContext) TraceID() string {
	b := make([]byte, 0, 32)
	b = appendHex64(b, c.TraceHi)
	b = appendHex64(b, c.TraceLo)
	return string(b)
}

// parseHex64 decodes exactly 16 lowercase hex digits.
func parseHex64(s string) (uint64, bool) {
	var x uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			x = x<<4 | uint64(c-'0')
		case c >= 'a' && c <= 'f':
			x = x<<4 | uint64(c-'a'+10)
		default:
			return 0, false
		}
	}
	return x, true
}

// ParseTraceparent decodes a version-00 traceparent header. It is strict:
// anything but the exact 55-byte lowercase shape with non-zero trace and
// span IDs reports ok=false, and Format(Parse(h)) == h for every accepted h.
func ParseTraceparent(s string) (SpanContext, bool) {
	if len(s) != traceparentLen {
		return SpanContext{}, false
	}
	if s[0] != '0' || s[1] != '0' || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, false
	}
	var c SpanContext
	var ok bool
	if c.TraceHi, ok = parseHex64(s[3:19]); !ok {
		return SpanContext{}, false
	}
	if c.TraceLo, ok = parseHex64(s[19:35]); !ok {
		return SpanContext{}, false
	}
	if c.SpanID, ok = parseHex64(s[36:52]); !ok {
		return SpanContext{}, false
	}
	flags, ok := parseHex64(s[53:55])
	if !ok {
		return SpanContext{}, false
	}
	c.Flags = uint8(flags)
	if !c.Valid() {
		return SpanContext{}, false
	}
	return c, true
}
