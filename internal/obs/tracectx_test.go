package obs

import (
	"strings"
	"testing"
)

func TestSpanContextRoundTrip(t *testing.T) {
	cases := []SpanContext{
		{TraceHi: 1, TraceLo: 2, SpanID: 3, Flags: 0},
		{TraceHi: 0, TraceLo: 1, SpanID: 1, Flags: FlagSampled},
		{TraceHi: 0xdeadbeefcafef00d, TraceLo: 0x0123456789abcdef, SpanID: 0xfedcba9876543210, Flags: 0xff},
		NewSpanContext(),
		NewSpanContext().Child(),
	}
	for _, c := range cases {
		h := c.Traceparent()
		if len(h) != traceparentLen {
			t.Fatalf("Traceparent(%+v) length = %d, want %d", c, len(h), traceparentLen)
		}
		got, ok := ParseTraceparent(h)
		if !ok {
			t.Fatalf("ParseTraceparent(%q) rejected its own format output", h)
		}
		if got != c {
			t.Fatalf("round trip: parsed %+v, want %+v (header %q)", got, c, h)
		}
		if got.Traceparent() != h {
			t.Fatalf("re-format: %q != %q", got.Traceparent(), h)
		}
	}
}

func TestSpanContextTraceID(t *testing.T) {
	c := SpanContext{TraceHi: 0x0102030405060708, TraceLo: 0x090a0b0c0d0e0f10, SpanID: 1}
	want := "0102030405060708090a0b0c0d0e0f10"
	if got := c.TraceID(); got != want {
		t.Fatalf("TraceID() = %q, want %q", got, want)
	}
	h := c.Traceparent()
	if !strings.Contains(h, want) {
		t.Fatalf("Traceparent %q does not contain trace ID %q", h, want)
	}
}

func TestNewSpanContext(t *testing.T) {
	a, b := NewSpanContext(), NewSpanContext()
	if !a.Valid() || !b.Valid() {
		t.Fatalf("minted contexts must be valid: %+v, %+v", a, b)
	}
	if a.Flags&FlagSampled == 0 {
		t.Fatalf("minted context not sampled: %+v", a)
	}
	if a.TraceHi == b.TraceHi && a.TraceLo == b.TraceLo {
		t.Fatalf("two minted contexts share a trace ID: %+v", a)
	}
	child := a.Child()
	if child.TraceHi != a.TraceHi || child.TraceLo != a.TraceLo {
		t.Fatalf("Child changed the trace ID: %+v vs %+v", child, a)
	}
	if child.SpanID == a.SpanID {
		t.Fatalf("Child kept the parent span ID %x", a.SpanID)
	}
	if child.Flags != a.Flags {
		t.Fatalf("Child changed flags: %x vs %x", child.Flags, a.Flags)
	}
}

// malformedTraceparents is the rejection table; it doubles as the fuzz seed
// corpus so the fuzzer starts from known-interesting near-misses.
var malformedTraceparents = []string{
	"",
	"00",
	"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",          // truncated
	"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra", // too long
	"01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",       // unknown version
	"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",       // invalid version
	"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",       // wrong separator
	"00-4bf92f3577b34da6a3ce929d0e0e4736_00f067aa0ba902b7-01",       // wrong separator
	"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7_01",       // wrong separator
	"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",       // uppercase trace
	"00-4bf92f3577b34da6a3ce929d0e0e4736-00F067AA0BA902B7-01",       // uppercase span
	"00-4bf92f3577b34da6a3ce929d0e0e473g-00f067aa0ba902b7-01",       // non-hex trace
	"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902bg-01",       // non-hex span
	"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0g",       // non-hex flags
	"00-00000000000000000000000000000000-00f067aa0ba902b7-01",       // zero trace ID
	"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",       // zero span ID
	"00-4bf92f3577b34da6a3ce929d0e0e4736 00f067aa0ba902b7-01",       // space separator
	"0a-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",       // version 0a
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	for _, h := range malformedTraceparents {
		if c, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted malformed header as %+v", h, c)
		}
	}
}

// FuzzParseTraceparent checks the invariant both ways: accepted headers must
// round-trip byte-for-byte through Traceparent(), and mutations of valid
// headers must either reject or round-trip.
func FuzzParseTraceparent(f *testing.F) {
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add(NewSpanContext().Traceparent())
	f.Add(SpanContext{TraceHi: 1, TraceLo: 2, SpanID: 3, Flags: 0xff}.Traceparent())
	for _, h := range malformedTraceparents {
		f.Add(h)
	}
	f.Fuzz(func(t *testing.T, s string) {
		c, ok := ParseTraceparent(s)
		if !ok {
			if c != (SpanContext{}) {
				t.Fatalf("rejecting parse of %q returned non-zero context %+v", s, c)
			}
			return
		}
		if !c.Valid() {
			t.Fatalf("ParseTraceparent(%q) accepted an invalid context %+v", s, c)
		}
		if got := c.Traceparent(); got != s {
			t.Fatalf("accepted header does not round-trip: %q -> %+v -> %q", s, c, got)
		}
	})
}

func BenchmarkParseTraceparent(b *testing.B) {
	h := NewSpanContext().Traceparent()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := ParseTraceparent(h); !ok {
			b.Fatal("rejected valid header")
		}
	}
}
