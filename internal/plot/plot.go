// Package plot renders small text-mode charts for the CLI: log-log scatter
// plots (Figure 3/7 style), line charts (the bandwidth-DSE curves) and
// S-curves (the prediction-ratio distributions of Figures 11–14). The paper
// communicates almost entirely through such plots; rendering them directly
// in the terminal keeps the reproduction self-contained.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Canvas is a fixed-size character grid with linear or logarithmic axes.
type Canvas struct {
	w, h       int
	cells      [][]rune
	xMin, xMax float64
	yMin, yMax float64
	logX, logY bool
	xLab, yLab string
	title      string
}

// NewCanvas allocates a w×h plotting area (excluding axis decorations).
// Minimum size is 16×8.
func NewCanvas(title string, w, h int) *Canvas {
	if w < 16 {
		w = 16
	}
	if h < 8 {
		h = 8
	}
	c := &Canvas{w: w, h: h, title: title}
	c.cells = make([][]rune, h)
	for i := range c.cells {
		c.cells[i] = make([]rune, w)
		for j := range c.cells[i] {
			c.cells[i][j] = ' '
		}
	}
	return c
}

// Axes sets the data ranges; log toggles logarithmic mapping per axis.
// Non-positive limits on a log axis are an error.
func (c *Canvas) Axes(xMin, xMax, yMin, yMax float64, logX, logY bool) error {
	if xMin >= xMax || yMin >= yMax {
		return fmt.Errorf("plot: empty axis range [%v,%v]×[%v,%v]", xMin, xMax, yMin, yMax)
	}
	if logX && xMin <= 0 || logY && yMin <= 0 {
		return fmt.Errorf("plot: log axis requires positive limits")
	}
	c.xMin, c.xMax, c.yMin, c.yMax = xMin, xMax, yMin, yMax
	c.logX, c.logY = logX, logY
	return nil
}

// Labels names the axes.
func (c *Canvas) Labels(x, y string) {
	c.xLab, c.yLab = x, y
}

// cell maps a data point to grid coordinates; ok=false when out of range.
func (c *Canvas) cell(x, y float64) (cx, cy int, ok bool) {
	fx := frac(x, c.xMin, c.xMax, c.logX)
	fy := frac(y, c.yMin, c.yMax, c.logY)
	if fx < 0 || fx > 1 || fy < 0 || fy > 1 {
		return 0, 0, false
	}
	cx = int(fx * float64(c.w-1))
	cy = c.h - 1 - int(fy*float64(c.h-1))
	return cx, cy, true
}

// frac converts a value to its fractional axis position.
func frac(v, lo, hi float64, logScale bool) float64 {
	if logScale {
		if v <= 0 {
			return -1
		}
		return (math.Log(v) - math.Log(lo)) / (math.Log(hi) - math.Log(lo))
	}
	return (v - lo) / (hi - lo)
}

// Point plots a single marker; out-of-range points are silently dropped
// (matching how the figures clip).
func (c *Canvas) Point(x, y float64, marker rune) {
	if cx, cy, ok := c.cell(x, y); ok {
		// Later series overwrite earlier ones; collisions show the newest.
		c.cells[cy][cx] = marker
	}
}

// Series plots many points with one marker.
func (c *Canvas) Series(xs, ys []float64, marker rune) {
	for i := range xs {
		if i < len(ys) {
			c.Point(xs[i], ys[i], marker)
		}
	}
}

// HLine draws a horizontal reference line at y.
func (c *Canvas) HLine(y float64, marker rune) {
	if _, cy, ok := c.cell(c.xMin, y); ok {
		for j := 0; j < c.w; j++ {
			if c.cells[cy][j] == ' ' {
				c.cells[cy][j] = marker
			}
		}
	}
}

// VLine draws a vertical reference line at x.
func (c *Canvas) VLine(x float64, marker rune) {
	if cx, _, ok := c.cell(x, c.yMin); ok {
		for i := 0; i < c.h; i++ {
			if c.cells[i][cx] == ' ' {
				c.cells[i][cx] = marker
			}
		}
	}
}

// Render produces the chart with a frame, axis limits and labels.
func (c *Canvas) Render() string {
	var b strings.Builder
	if c.title != "" {
		fmt.Fprintf(&b, "%s\n", c.title)
	}
	yHi := fmtAxis(c.yMax)
	yLo := fmtAxis(c.yMin)
	pad := len(yHi)
	if len(yLo) > pad {
		pad = len(yLo)
	}

	top := fmt.Sprintf("%*s ┌%s┐", pad, yHi, strings.Repeat("─", c.w))
	b.WriteString(top + "\n")
	for i, row := range c.cells {
		label := strings.Repeat(" ", pad)
		if i == c.h-1 {
			label = fmt.Sprintf("%*s", pad, yLo)
		}
		fmt.Fprintf(&b, "%s │%s│\n", label, string(row))
	}
	fmt.Fprintf(&b, "%*s └%s┘\n", pad, "", strings.Repeat("─", c.w))
	xLo, xHi := fmtAxis(c.xMin), fmtAxis(c.xMax)
	gap := c.w - len(xLo) - len(xHi)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&b, "%*s  %s%s%s", pad, "", xLo, strings.Repeat(" ", gap), xHi)
	if c.xLab != "" || c.yLab != "" {
		fmt.Fprintf(&b, "\n%*s  x: %s   y: %s", pad, "", c.xLab, c.yLab)
	}
	b.WriteString("\n")
	return b.String()
}

// fmtAxis renders an axis limit compactly.
func fmtAxis(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6 || (av > 0 && av < 1e-3):
		return fmt.Sprintf("%.1e", v)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Scatter is a one-call log-log scatter plot of a point cloud.
func Scatter(title, xLab, yLab string, xs, ys []float64, w, h int) (string, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return "", fmt.Errorf("plot: scatter needs equal, non-empty series")
	}
	xMin, xMax := positiveRange(xs)
	yMin, yMax := positiveRange(ys)
	c := NewCanvas(title, w, h)
	if err := c.Axes(xMin, xMax, yMin, yMax, true, true); err != nil {
		return "", err
	}
	c.Labels(xLab+" (log)", yLab+" (log)")
	c.Series(xs, ys, '·')
	return c.Render(), nil
}

// Curve is a one-call linear line chart of (xs, ys), with an optional
// vertical marker (skipped when markX ≤ 0).
func Curve(title, xLab, yLab string, xs, ys []float64, markX float64, w, h int) (string, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return "", fmt.Errorf("plot: curve needs equal, non-empty series")
	}
	xMin, xMax := minMax(xs)
	yMin, yMax := minMax(ys)
	// minMax guarantees yMin <= yMax; a non-strict ordering means the range
	// is degenerate (equal extremes or NaN) and needs widening.
	if !(yMin < yMax) {
		yMax = yMin + 1
	}
	c := NewCanvas(title, w, h)
	if err := c.Axes(xMin, xMax, 0, yMax*1.05, false, false); err != nil {
		return "", err
	}
	c.Labels(xLab, yLab)
	if markX > 0 {
		c.VLine(markX, '¦')
	}
	c.Series(xs, ys, '●')
	return c.Render(), nil
}

// SCurve renders sorted prediction/measured ratios with a reference line at
// 1.0, the Figures 11–14 shape.
func SCurve(title string, ratios []float64, w, h int) (string, error) {
	if len(ratios) == 0 {
		return "", fmt.Errorf("plot: empty ratio distribution")
	}
	xs := make([]float64, len(ratios))
	for i := range xs {
		if len(ratios) == 1 {
			xs[i] = 0
		} else {
			xs[i] = 100 * float64(i) / float64(len(ratios)-1)
		}
	}
	yMin, yMax := minMax(ratios)
	if yMin > 0.9 {
		yMin = 0.9
	}
	if yMax < 1.1 {
		yMax = 1.1
	}
	c := NewCanvas(title, w, h)
	if err := c.Axes(0, 100, yMin, yMax, false, false); err != nil {
		return "", err
	}
	c.Labels("percentile of test set", "pred / measured")
	c.HLine(1.0, '┄')
	c.Series(xs, ratios, '●')
	return c.Render(), nil
}

// minMax returns the extrema of xs.
func minMax(xs []float64) (lo, hi float64) {
	lo, hi = xs[0], xs[0]
	for _, v := range xs {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	return lo, hi
}

// positiveRange returns the extrema of the positive entries (for log axes),
// padding degenerate ranges.
func positiveRange(xs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), 0
	for _, v := range xs {
		if v > 0 {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) {
		return 0.1, 1
	}
	if !(lo < hi) {
		hi = lo * 2
	}
	return lo, hi
}
