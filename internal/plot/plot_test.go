package plot

import (
	"strings"
	"testing"
)

func TestScatterBasics(t *testing.T) {
	xs := []float64{0.1, 1, 10, 100, 1000}
	ys := []float64{0.5, 2, 30, 200, 4000}
	out, err := Scatter("title", "GFLOPs", "ms", xs, ys, 40, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "title") || !strings.Contains(out, "GFLOPs") {
		t.Fatalf("missing decorations:\n%s", out)
	}
	if strings.Count(out, "·") < 4 {
		t.Fatalf("markers missing:\n%s", out)
	}
	// A roughly linear log-log cloud should place markers monotonically:
	// the first marker row (top) must correspond to larger x than the last.
	lines := strings.Split(out, "\n")
	firstCol, lastCol := -1, -1
	for _, l := range lines {
		if i := strings.IndexRune(l, '·'); i >= 0 {
			if firstCol == -1 {
				firstCol = i
			}
			lastCol = i
		}
	}
	if firstCol <= lastCol {
		t.Fatalf("log-log rising cloud should descend left: first %d last %d\n%s",
			firstCol, lastCol, out)
	}
}

func TestScatterErrors(t *testing.T) {
	if _, err := Scatter("t", "x", "y", nil, nil, 40, 10); err == nil {
		t.Fatal("empty scatter should error")
	}
	if _, err := Scatter("t", "x", "y", []float64{1, 2}, []float64{1}, 40, 10); err == nil {
		t.Fatal("mismatched series should error")
	}
}

func TestCurveWithMarker(t *testing.T) {
	xs := []float64{200, 400, 600, 800, 1000}
	ys := []float64{50, 30, 22, 18, 16}
	out, err := Curve("dse", "GB/s", "ms", xs, ys, 672, 50, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "●") {
		t.Fatalf("curve markers missing:\n%s", out)
	}
	if !strings.Contains(out, "¦") {
		t.Fatalf("vertical marker missing:\n%s", out)
	}
}

func TestSCurve(t *testing.T) {
	ratios := []float64{0.8, 0.9, 0.95, 1.0, 1.05, 1.2, 1.6}
	out, err := SCurve("s", ratios, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "┄") {
		t.Fatalf("reference line missing:\n%s", out)
	}
	if !strings.Contains(out, "pred / measured") {
		t.Fatalf("labels missing:\n%s", out)
	}
	if _, err := SCurve("s", nil, 40, 10); err == nil {
		t.Fatal("empty S-curve should error")
	}
}

func TestCanvasAxisValidation(t *testing.T) {
	c := NewCanvas("t", 20, 10)
	if err := c.Axes(1, 1, 0, 1, false, false); err == nil {
		t.Fatal("empty x range should error")
	}
	if err := c.Axes(0, 1, 0, 1, true, false); err == nil {
		t.Fatal("log axis with zero limit should error")
	}
	if err := c.Axes(1, 10, 1, 10, true, true); err != nil {
		t.Fatal(err)
	}
}

func TestOutOfRangePointsDropped(t *testing.T) {
	c := NewCanvas("t", 20, 10)
	if err := c.Axes(0, 1, 0, 1, false, false); err != nil {
		t.Fatal(err)
	}
	c.Point(5, 5, 'X') // outside: silently clipped
	if strings.Contains(c.Render(), "X") {
		t.Fatal("out-of-range point was drawn")
	}
	c.Point(0.5, 0.5, 'X')
	if !strings.Contains(c.Render(), "X") {
		t.Fatal("in-range point missing")
	}
}

func TestMinimumCanvasSize(t *testing.T) {
	c := NewCanvas("t", 1, 1)
	if c.w < 16 || c.h < 8 {
		t.Fatalf("minimum size not enforced: %d×%d", c.w, c.h)
	}
}

func TestRenderDimensionsStable(t *testing.T) {
	c := NewCanvas("", 30, 10)
	if err := c.Axes(0, 1, 0, 1, false, false); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(c.Render(), "\n"), "\n")
	// frame top + 10 rows + frame bottom + x labels.
	if len(lines) != 13 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), c.Render())
	}
}
