package profiler

import (
	"reflect"
	"testing"

	"repro/internal/dnn"
	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/zoo"
)

// TestPreparedReplayMatchesProfile proves the collection fast path's core
// contract: preparing a (network, batch) once and replaying it across
// devices produces traces identical to a fresh Profile per device — the
// per-run RNG seed depends only on (network, GPU, batch), not on profiler
// reuse or device order.
func TestPreparedReplayMatchesProfile(t *testing.T) {
	net := zoo.MustResNet(18)
	devA := sim.NewDefault(gpu.A100)
	devB := sim.NewDefault(gpu.V100)

	p := &Profiler{Warmup: 2, Batches: 4}
	prep, err := p.Prepare(net, 8)
	if err != nil {
		t.Fatal(err)
	}
	p.Device = devA
	trA, err := p.ProfilePrepared(prep)
	if err != nil {
		t.Fatal(err)
	}
	p.Device = devB
	trB, err := p.ProfilePrepared(prep)
	if err != nil {
		t.Fatal(err)
	}

	for _, c := range []struct {
		dev  *sim.Device
		want *Trace
	}{{sim.NewDefault(gpu.A100), trA}, {sim.NewDefault(gpu.V100), trB}} {
		fresh := &Profiler{Device: c.dev, Warmup: 2, Batches: 4}
		tr, err := fresh.Profile(net, 8)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(tr, c.want) {
			t.Fatalf("replayed trace on %s differs from a fresh Profile", c.dev.GPU.Name)
		}
	}
}

// TestProfileE2EPreparedMatchesDetail: the E2E-only path runs the identical
// simulation (same RNG stream, same E2ETime) and only skips assembling the
// per-kernel trace.
func TestProfileE2EPreparedMatchesDetail(t *testing.T) {
	net := zoo.MustResNet(18)
	p := &Profiler{Device: sim.NewDefault(gpu.A100), Warmup: 2, Batches: 4}
	prep, err := p.Prepare(net, 8)
	if err != nil {
		t.Fatal(err)
	}
	detail, err := p.ProfilePrepared(prep)
	if err != nil {
		t.Fatal(err)
	}
	e2e, err := p.ProfileE2EPrepared(prep)
	if err != nil {
		t.Fatal(err)
	}
	if e2e.E2ETime != detail.E2ETime {
		t.Fatalf("E2ETime differs: %v vs %v", e2e.E2ETime, detail.E2ETime)
	}
	if e2e.Layers != nil {
		t.Fatal("E2E-only trace should carry no layer detail")
	}
	if e2e.Network != detail.Network || e2e.GPU != detail.GPU || e2e.BatchSize != detail.BatchSize {
		t.Fatal("trace identity differs between the two paths")
	}
}

// TestProfileMetricsSuccessOnly: profiler_profiles_total counts completed
// profiles only; failed preparation and OOM runs land in their own counters.
func TestProfileMetricsSuccessOnly(t *testing.T) {
	profiles := metricProfiles.Value()
	failures := metricProfileFailures.Value()
	ooms := metricProfileOOMs.Value()

	p := NewFast(sim.NewDefault(gpu.A100), 2)
	if _, err := p.Profile(zoo.MustResNet(18), 8); err != nil {
		t.Fatal(err)
	}
	if got := metricProfiles.Value() - profiles; got != 1 {
		t.Fatalf("success incremented profiles by %d, want 1", got)
	}

	bad := dnn.New("bad", "Test", dnn.TaskImageClassification, dnn.Shape{3, 8, 8})
	bad.Conv(dnn.NetworkInput, 7, 3, 1, 1, 0) // channel mismatch
	if _, err := p.Profile(bad, 4); err == nil {
		t.Fatal("invalid network should error")
	}
	if got := metricProfiles.Value() - profiles; got != 1 {
		t.Fatalf("failed run leaked into profiles_total (now +%d)", got)
	}
	if got := metricProfileFailures.Value() - failures; got != 1 {
		t.Fatalf("failures_total moved by %d, want 1", got)
	}

	oom := NewFast(sim.NewDefault(gpu.QuadroP620), 2)
	if _, err := oom.Profile(zoo.MustVGG(16, false), 512); err == nil {
		t.Fatal("expected OOM")
	}
	if got := metricProfiles.Value() - profiles; got != 1 {
		t.Fatalf("OOM run leaked into profiles_total (now +%d)", got)
	}
	if got := metricProfileOOMs.Value() - ooms; got != 1 {
		t.Fatalf("oom_total moved by %d, want 1", got)
	}
}

// BenchmarkProfile gates the profiler hot loop (the bench_compare gate for
// this package): one full detail profile of ResNet-50 at the training batch
// size with the reduced measurement protocol.
func BenchmarkProfile(b *testing.B) {
	net := zoo.MustResNet(50)
	p := NewFast(sim.NewDefault(gpu.A100), 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Profile(net, 512); err != nil {
			b.Fatal(err)
		}
	}
}
