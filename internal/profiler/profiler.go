// Package profiler reproduces the role of the PyTorch Profiler in the
// paper's methodology (§3): it executes a network on a device model and
// produces a trace that links network-level information (layer shapes,
// FLOPs), framework-level information (layer execution spans) and
// hardware-level information (kernel launches and durations), creating the
// layer↔kernel mapping the kernel-wise model trains on (Figure 2).
//
// Timing follows the paper's measurement protocol: a warm-up period is
// skipped, the next Batches batches are measured, and every reported number
// is the average across measured batches.
package profiler

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"repro/internal/dnn"
	"repro/internal/kernels"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Observability handles for trace generation. Dataset collection calls
// Profile thousands of times, so only aggregate metrics are recorded here;
// span-level structure comes from the per-GPU build spans in internal/bench.
var (
	metricProfiles = obs.Default().Counter("profiler_profiles_total",
		"Network executions profiled (one per (network, batch, GPU) run).")
	metricProfileSeconds = obs.Default().Histogram("profiler_profile_seconds",
		"Latency of one Profile call (warm-up plus measured batches).", nil)
	metricProfileOOMs = obs.Default().Counter("profiler_oom_total",
		"Profile runs rejected because the footprint exceeded device memory.")
)

// ErrOutOfMemory marks runs whose footprint exceeds device memory; the
// dataset builder drops them, as the paper's cleaning step does.
var ErrOutOfMemory = errors.New("profiler: out of device memory")

// KernelEvent is one averaged kernel execution within a batch.
type KernelEvent struct {
	// Name is the kernel implementation name.
	Name string
	// LayerIndex is the index of the producing layer in the network.
	LayerIndex int
	// Start is the kernel's start offset within the batch timeline, seconds.
	Start float64
	// Duration is the measured (batch-averaged) kernel duration, seconds.
	Duration float64
	// Kernel carries the structural features of the invocation.
	Kernel kernels.Kernel
}

// LayerRecord aggregates the kernels of one layer.
type LayerRecord struct {
	// Index is the layer's position in the network.
	Index int
	// Name and Kind identify the layer; Signature is its structural key.
	Name      string
	Kind      dnn.Kind
	Signature string
	// FLOPs, InputElems and OutputElems are the layer's structural metrics.
	FLOPs       int64
	InputElems  int64
	OutputElems int64
	// Kernels lists the kernel events the layer dispatched.
	Kernels []KernelEvent
	// Duration is the layer execution time: the sum of its kernels'
	// durations ("we calculate layer execution times from the start and end
	// execution times for all the kernels launched for this layer", §3).
	Duration float64
}

// Trace is the full profile of one (network, batch size, GPU) execution.
type Trace struct {
	Network   string
	Family    string
	Task      dnn.Task
	GPU       string
	BatchSize int
	// Training marks a training-step trace (forward + backward + optimizer).
	Training bool
	// TotalFLOPs is the theoretical FLOPs of the whole forward pass.
	TotalFLOPs int64
	// Layers holds one record per network layer (including layers that
	// dispatch no kernels, with empty Kernels).
	Layers []LayerRecord
	// E2ETime is the measured (batch-averaged) end-to-end wall time of one
	// batch, seconds — what torch.cuda.Event timestamps would report.
	E2ETime float64
	// KernelSum is the sum of all averaged kernel durations, seconds.
	KernelSum float64
}

// KernelEvents returns all kernel events across layers, in launch order.
func (t *Trace) KernelEvents() []KernelEvent {
	total := 0
	for _, l := range t.Layers {
		total += len(l.Kernels)
	}
	out := make([]KernelEvent, 0, total)
	for _, l := range t.Layers {
		out = append(out, l.Kernels...)
	}
	return out
}

// Profiler runs networks on a device model with the paper's warm-up and
// averaging protocol.
type Profiler struct {
	// Device is the device timing model to execute on.
	Device *sim.Device
	// Warmup is the number of discarded warm-up batches (paper: 20).
	Warmup int
	// Batches is the number of measured batches (paper: batches 21–50, 30).
	Batches int
	// Training profiles full training steps (forward + backward + optimizer
	// kernels) instead of inference — the paper's future-work extension.
	Training bool

	// base, noisy and sumDur are per-kernel scratch buffers reused across
	// Profile calls — the dominant allocations of a collection sweep. Their
	// presence makes a Profiler single-goroutine; the dataset builder already
	// creates one per worker.
	base, noisy, sumDur []float64
}

// New returns a profiler for the device with the paper's protocol
// (20 warm-up batches, 30 measured batches).
func New(dev *sim.Device) *Profiler {
	return &Profiler{Device: dev, Warmup: 20, Batches: 30}
}

// NewFast returns a profiler with a reduced measurement count for tests and
// large dataset sweeps; averages are noisier but unbiased.
func NewFast(dev *sim.Device, batches int) *Profiler {
	return &Profiler{Device: dev, Warmup: 2, Batches: batches}
}

// seedFor derives a deterministic RNG seed per (network, GPU, batch) so the
// whole dataset is reproducible.
func (p *Profiler) seedFor(net string, batch int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d|%t", net, p.Device.GPU.Name, batch, p.Training)
	return int64(h.Sum64())
}

// Profile executes the network at the given batch size and returns its
// trace. The network is (re-)shape-inferred at that batch size. Runs whose
// memory footprint exceeds the device return ErrOutOfMemory.
func (p *Profiler) Profile(n *dnn.Network, batch int) (*Trace, error) {
	tm := obs.StartTimer(metricProfileSeconds)
	defer tm.Stop()
	metricProfiles.Inc()
	if err := n.Infer(batch); err != nil {
		return nil, err
	}
	fits := p.Device.FitsMemory
	if p.Training {
		fits = p.Device.FitsMemoryTraining
	}
	if !fits(n) {
		metricProfileOOMs.Inc()
		return nil, fmt.Errorf("%w: %s at batch %d on %s",
			ErrOutOfMemory, n.Name, batch, p.Device.GPU.Name)
	}
	totalFLOPs, err := n.TotalFLOPs()
	if err != nil {
		return nil, err
	}

	var ks []kernels.Kernel
	var layerIdx []int
	if p.Training {
		ks, layerIdx = kernels.ForNetworkTraining(n)
	} else {
		ks, layerIdx = kernels.ForNetwork(n)
	}
	base := growScratch(&p.base, len(ks))
	for i, k := range ks {
		base[i] = p.Device.BaseKernelTime(k)
	}

	rnd := rand.New(rand.NewSource(p.seedFor(n.Name, batch)))
	// Warm-up batches: executed for protocol fidelity (they advance the
	// noise stream — one draw per kernel, exactly as a timed execution
	// would) but not recorded, so the base-time computation is skipped.
	for b := 0; b < p.Warmup; b++ {
		for range ks {
			_ = noiseDraw(rnd, p.Device)
		}
	}

	batches := p.Batches
	if batches <= 0 {
		batches = 1
	}
	noisy := growScratch(&p.noisy, len(ks))
	sumDur := growScratch(&p.sumDur, len(ks))
	for i := range sumDur {
		sumDur[i] = 0
	}
	var wallSum float64
	for b := 0; b < batches; b++ {
		for i := range ks {
			noisy[i] = base[i] * noiseDraw(rnd, p.Device)
			sumDur[i] += noisy[i]
		}
		wallSum += p.Device.WallTime(noisy)
	}

	tr := &Trace{
		Network:    n.Name,
		Family:     n.Family,
		Task:       n.Task,
		GPU:        p.Device.GPU.Name,
		BatchSize:  batch,
		Training:   p.Training,
		TotalFLOPs: totalFLOPs,
		E2ETime:    wallSum / float64(batches),
	}

	tr.Layers = make([]LayerRecord, len(n.Layers))
	for i, l := range n.Layers {
		inElems := int64(0)
		for _, s := range l.InShapes {
			inElems += s.Numel()
		}
		tr.Layers[i] = LayerRecord{
			Index:       i,
			Name:        l.Name,
			Kind:        l.Kind,
			Signature:   l.Signature(),
			FLOPs:       dnn.LayerFLOPs(l),
			InputElems:  inElems,
			OutputElems: l.OutShape.Numel(),
		}
	}

	var cursor float64
	for i, k := range ks {
		avg := sumDur[i] / float64(batches)
		ev := KernelEvent{
			Name:       k.Name,
			LayerIndex: layerIdx[i],
			Start:      cursor,
			Duration:   avg,
			Kernel:     k,
		}
		cursor += avg
		lr := &tr.Layers[layerIdx[i]]
		lr.Kernels = append(lr.Kernels, ev)
		lr.Duration += avg
		tr.KernelSum += avg
	}
	return tr, nil
}

// growScratch resizes a reusable buffer to n elements, reallocating only when
// capacity is exceeded. Contents are unspecified.
func growScratch(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// noiseDraw draws one lognormal measurement-noise factor matching the
// device's configured sigma.
func noiseDraw(rnd *rand.Rand, dev *sim.Device) float64 {
	sigma := dev.Config().NoiseSigma
	if sigma <= 0 {
		return 1
	}
	return math.Exp(rnd.NormFloat64() * sigma)
}
