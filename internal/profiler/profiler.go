// Package profiler reproduces the role of the PyTorch Profiler in the
// paper's methodology (§3): it executes a network on a device model and
// produces a trace that links network-level information (layer shapes,
// FLOPs), framework-level information (layer execution spans) and
// hardware-level information (kernel launches and durations), creating the
// layer↔kernel mapping the kernel-wise model trains on (Figure 2).
//
// Timing follows the paper's measurement protocol: a warm-up period is
// skipped, the next Batches batches are measured, and every reported number
// is the average across measured batches.
//
// Profiling one (network, batch size) on several devices shares work: the
// device-independent half (shape inference, kernel enumeration, layer
// templates) is computed once by Prepare and re-executed per device by
// ProfilePrepared, which additionally memoizes noiseless kernel base times
// per device across calls.
package profiler

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strconv"

	"repro/internal/dnn"
	"repro/internal/kernels"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Observability handles for trace generation. Dataset collection calls
// Profile thousands of times, so only aggregate metrics are recorded here;
// span-level structure comes from the per-GPU build spans in internal/bench.
var (
	metricProfiles = obs.Default().Counter("profiler_profiles_total",
		"Network executions profiled to completion (one per successful (network, batch, GPU) run).")
	metricProfileSeconds = obs.Default().Histogram("profiler_profile_seconds",
		"Latency of one profiled execution (warm-up plus measured batches).", nil)
	metricProfileOOMs = obs.Default().Counter("profiler_oom_total",
		"Profile runs rejected because the footprint exceeded device memory.")
	metricProfileFailures = obs.Default().Counter("profiler_failures_total",
		"Profile runs aborted by a non-OOM error (shape inference or FLOP counting failure).")
)

// ErrOutOfMemory marks runs whose footprint exceeds device memory; the
// dataset builder drops them, as the paper's cleaning step does.
var ErrOutOfMemory = errors.New("profiler: out of device memory")

// KernelEvent is one averaged kernel execution within a batch.
type KernelEvent struct {
	// Name is the kernel implementation name.
	Name string
	// LayerIndex is the index of the producing layer in the network.
	LayerIndex int
	// Start is the kernel's start offset within the batch timeline, seconds.
	Start float64
	// Duration is the measured (batch-averaged) kernel duration, seconds.
	Duration float64
	// Kernel carries the structural features of the invocation.
	Kernel kernels.Kernel
}

// LayerRecord aggregates the kernels of one layer.
type LayerRecord struct {
	// Index is the layer's position in the network.
	Index int
	// Name and Kind identify the layer; Signature is its structural key.
	Name      string
	Kind      dnn.Kind
	Signature string
	// FLOPs, InputElems and OutputElems are the layer's structural metrics.
	FLOPs       int64
	InputElems  int64
	OutputElems int64
	// Kernels lists the kernel events the layer dispatched.
	Kernels []KernelEvent
	// Duration is the layer execution time: the sum of its kernels'
	// durations ("we calculate layer execution times from the start and end
	// execution times for all the kernels launched for this layer", §3).
	Duration float64
}

// Trace is the full profile of one (network, batch size, GPU) execution.
type Trace struct {
	Network   string
	Family    string
	Task      dnn.Task
	GPU       string
	BatchSize int
	// Training marks a training-step trace (forward + backward + optimizer).
	Training bool
	// TotalFLOPs is the theoretical FLOPs of the whole forward pass.
	TotalFLOPs int64
	// Layers holds one record per network layer (including layers that
	// dispatch no kernels, with empty Kernels).
	Layers []LayerRecord
	// E2ETime is the measured (batch-averaged) end-to-end wall time of one
	// batch, seconds — what torch.cuda.Event timestamps would report.
	E2ETime float64
	// KernelSum is the sum of all averaged kernel durations, seconds.
	KernelSum float64
}

// KernelEvents returns all kernel events across layers, in launch order.
func (t *Trace) KernelEvents() []KernelEvent {
	total := 0
	for _, l := range t.Layers {
		total += len(l.Kernels)
	}
	out := make([]KernelEvent, 0, total)
	for _, l := range t.Layers {
		out = append(out, l.Kernels...)
	}
	return out
}

// Profiler runs networks on a device model with the paper's warm-up and
// averaging protocol.
type Profiler struct {
	// Device is the device timing model to execute on.
	Device *sim.Device
	// Warmup is the number of discarded warm-up batches (paper: 20).
	Warmup int
	// Batches is the number of measured batches (paper: batches 21–50, 30).
	Batches int
	// Training profiles full training steps (forward + backward + optimizer
	// kernels) instead of inference — the paper's future-work extension.
	Training bool

	// base, noisy and sumDur are per-kernel scratch buffers reused across
	// Profile calls — the dominant allocations of a collection sweep. Their
	// presence makes a Profiler single-goroutine; the dataset builder already
	// creates one per worker.
	base, noisy, sumDur, uniqBase []float64

	// baseTimes memoizes noiseless kernel durations. Kernels recur heavily
	// across a network (every residual block repeats its shapes) and across
	// zoo families, so the memo turns the per-run BaseKernelTime sweep —
	// seven hash digests plus a pow per kernel — into map hits. The key
	// includes the device pointer because a collection worker re-points
	// Device across GPUs while reusing one Profiler.
	baseTimes map[baseTimeKey]float64

	// rnd is the reusable noise RNG, re-seeded per run (seeding writes the
	// generator's whole state, so reuse is exact, not approximate).
	rnd *rand.Rand

	// dedup is Prepare's reusable kernel→unique-index scratch map.
	dedup map[kernels.Kernel]int32
}

// baseTimeKey memoizes BaseKernelTime per (device, kernel invocation).
type baseTimeKey struct {
	dev *sim.Device
	k   kernels.Kernel
}

// New returns a profiler for the device with the paper's protocol
// (20 warm-up batches, 30 measured batches).
func New(dev *sim.Device) *Profiler {
	return &Profiler{Device: dev, Warmup: 20, Batches: 30}
}

// NewFast returns a profiler with a reduced measurement count for tests and
// large dataset sweeps; averages are noisier but unbiased.
func NewFast(dev *sim.Device, batches int) *Profiler {
	return &Profiler{Device: dev, Warmup: 2, Batches: batches}
}

// seedFor derives a deterministic RNG seed per (network, GPU, batch, mode)
// so the whole dataset is reproducible. The digest is fnv-1a over the exact
// byte stream "%s|%s|%d|%t" formatting produced, folded without the
// fmt/hash.Hash64 allocations.
func seedFor(net, gpuName string, batch int, training bool) int64 {
	const offset64, prime64 = uint64(14695981039346656037), uint64(1099511628211)
	h := offset64
	fold := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
	}
	fold(net)
	fold("|")
	fold(gpuName)
	fold("|")
	var buf [20]byte
	for _, b := range strconv.AppendInt(buf[:0], int64(batch), 10) {
		h ^= uint64(b)
		h *= prime64
	}
	fold("|")
	fold(strconv.FormatBool(training))
	return int64(h)
}

// Prepared is the device-independent half of profiling one (network, batch
// size) pair: shape inference, FLOP counting, kernel enumeration, memory
// footprint and layer templates. One Prepared can be executed on any number
// of devices via ProfilePrepared — the dataset builder prepares each batch
// size once and replays it across GPUs. It snapshots everything it needs, so
// it stays valid after the network is re-inferred at another batch size.
type Prepared struct {
	name       string
	family     string
	task       dnn.Task
	batch      int
	training   bool
	totalFLOPs int64
	footprint  int64

	ks       []kernels.Kernel
	layerIdx []int
	// uniq holds the distinct kernel invocations of ks, and uniqIdx maps each
	// launch to its entry (ks[i] == uniq[uniqIdx[i]]). Networks relaunch the
	// same invocation heavily (residual blocks repeat shapes), so per-device
	// base-time resolution hashes each distinct kernel once instead of once
	// per launch.
	uniq    []kernels.Kernel
	uniqIdx []int32
	// layers holds per-layer templates with nil Kernels; layerKernels counts
	// each layer's dispatches so trace assembly can presize exactly.
	layers       []LayerRecord
	layerKernels []int
}

// Kernels reports how many kernel launches one execution dispatches.
func (pr *Prepared) Kernels() int { return len(pr.ks) }

// Prepare computes the device-independent work of profiling the network at
// the given batch size. The network is (re-)shape-inferred at that batch
// size; the returned Prepared snapshots the result.
func (p *Profiler) Prepare(n *dnn.Network, batch int) (*Prepared, error) {
	if err := n.Infer(batch); err != nil {
		metricProfileFailures.Inc()
		return nil, err
	}
	totalFLOPs, err := n.TotalFLOPs()
	if err != nil {
		metricProfileFailures.Inc()
		return nil, err
	}
	prep := &Prepared{
		name:       n.Name,
		family:     n.Family,
		task:       n.Task,
		batch:      batch,
		training:   p.Training,
		totalFLOPs: totalFLOPs,
	}
	if p.Training {
		prep.ks, prep.layerIdx = kernels.ForNetworkTraining(n)
		prep.footprint = sim.TrainingFootprint(n)
	} else {
		prep.ks, prep.layerIdx = kernels.ForNetwork(n)
		prep.footprint = sim.InferenceFootprint(n)
	}
	prep.layers = make([]LayerRecord, len(n.Layers))
	for i, l := range n.Layers {
		inElems := int64(0)
		for _, s := range l.InShapes {
			inElems += s.Numel()
		}
		prep.layers[i] = LayerRecord{
			Index:       i,
			Name:        l.Name,
			Kind:        l.Kind,
			Signature:   l.Signature(),
			FLOPs:       dnn.LayerFLOPs(l),
			InputElems:  inElems,
			OutputElems: l.OutShape.Numel(),
		}
	}
	prep.layerKernels = make([]int, len(n.Layers))
	for _, li := range prep.layerIdx {
		prep.layerKernels[li]++
	}
	prep.uniqIdx = make([]int32, len(prep.ks))
	if p.dedup == nil {
		p.dedup = make(map[kernels.Kernel]int32, len(prep.ks))
	} else {
		clear(p.dedup)
	}
	at := p.dedup
	for i, k := range prep.ks {
		u, ok := at[k]
		if !ok {
			u = int32(len(prep.uniq))
			at[k] = u
			prep.uniq = append(prep.uniq, k)
		}
		prep.uniqIdx[i] = u
	}
	return prep, nil
}

// Profile executes the network at the given batch size and returns its
// trace. The network is (re-)shape-inferred at that batch size. Runs whose
// memory footprint exceeds the device return ErrOutOfMemory.
func (p *Profiler) Profile(n *dnn.Network, batch int) (*Trace, error) {
	prep, err := p.Prepare(n, batch)
	if err != nil {
		return nil, err
	}
	return p.ProfilePrepared(prep)
}

// ProfilePrepared executes a prepared (network, batch size) on the
// profiler's current device and returns its trace. Runs whose memory
// footprint exceeds the device return ErrOutOfMemory.
func (p *Profiler) ProfilePrepared(prep *Prepared) (*Trace, error) {
	return p.run(prep, true)
}

// ProfileE2EPrepared is ProfilePrepared without the per-kernel trace: it
// executes the same simulation (identical RNG stream, identical E2ETime) but
// returns a trace with nil Layers and no KernelSum, skipping the kernel
// event assembly that dominates allocation. Collection uses it for the batch
// sizes where only the end-to-end record is kept.
func (p *Profiler) ProfileE2EPrepared(prep *Prepared) (*Trace, error) {
	return p.run(prep, false)
}

// run is the shared execution path; detail selects full trace assembly.
func (p *Profiler) run(prep *Prepared, detail bool) (*Trace, error) {
	tm := obs.StartTimer(metricProfileSeconds)
	defer tm.Stop()
	if !p.Device.FitsFootprint(prep.footprint) {
		metricProfileOOMs.Inc()
		return nil, fmt.Errorf("%w: %s at batch %d on %s",
			ErrOutOfMemory, prep.name, prep.batch, p.Device.GPU.Name)
	}

	ks := prep.ks
	base := growScratch(&p.base, len(ks))
	if p.baseTimes == nil {
		p.baseTimes = make(map[baseTimeKey]float64, 4*len(prep.uniq))
	}
	// Resolve base times per distinct invocation (one struct hash each), then
	// fan out to launch order with plain index loads.
	uniqBase := growScratch(&p.uniqBase, len(prep.uniq))
	for i, k := range prep.uniq {
		key := baseTimeKey{p.Device, k}
		t, ok := p.baseTimes[key]
		if !ok {
			t = p.Device.BaseKernelTime(k)
			p.baseTimes[key] = t
		}
		uniqBase[i] = t
	}
	for i, u := range prep.uniqIdx {
		base[i] = uniqBase[u]
	}

	sigma := p.Device.Config().NoiseSigma
	var rnd *rand.Rand
	if sigma > 0 {
		// With σ ≤ 0 the simulation draws nothing (see lognormal in
		// internal/sim), so the RNG — whose seeding is itself costly — is
		// only touched when noise is on. Seed fully rewrites the source
		// state, so the reused generator's stream is identical to a fresh
		// rand.New(rand.NewSource(seed)).
		seed := seedFor(prep.name, p.Device.GPU.Name, prep.batch, prep.training)
		if p.rnd == nil {
			p.rnd = rand.New(rand.NewSource(seed))
		} else {
			p.rnd.Seed(seed)
		}
		rnd = p.rnd
		// Warm-up batches are executed for protocol fidelity: they advance
		// the noise stream one draw per kernel, exactly as a timed execution
		// would. Only NormFloat64 advances the RNG, so the lognormal
		// math.Exp on each discarded draw is skipped — measured output is
		// bit-identical.
		for b := 0; b < p.Warmup; b++ {
			for range ks {
				rnd.NormFloat64()
			}
		}
	}

	batches := p.Batches
	if batches <= 0 {
		batches = 1
	}
	noisy := growScratch(&p.noisy, len(ks))
	var sumDur []float64
	if detail {
		sumDur = growScratch(&p.sumDur, len(ks))
		for i := range sumDur {
			sumDur[i] = 0
		}
	}
	var wallSum float64
	for b := 0; b < batches; b++ {
		switch {
		case sigma > 0 && detail:
			for i := range ks {
				noisy[i] = base[i] * math.Exp(rnd.NormFloat64()*sigma)
				sumDur[i] += noisy[i]
			}
		case sigma > 0:
			for i := range ks {
				noisy[i] = base[i] * math.Exp(rnd.NormFloat64()*sigma)
			}
		case detail:
			// Noise-free devices still run the per-batch summation so the
			// averages below divide the same accumulated sums either way.
			for i := range ks {
				noisy[i] = base[i]
				sumDur[i] += base[i]
			}
		default:
			copy(noisy, base)
		}
		wallSum += p.Device.WallTime(noisy)
	}

	tr := &Trace{
		Network:    prep.name,
		Family:     prep.family,
		Task:       prep.task,
		GPU:        p.Device.GPU.Name,
		BatchSize:  prep.batch,
		Training:   prep.training,
		TotalFLOPs: prep.totalFLOPs,
		E2ETime:    wallSum / float64(batches),
	}
	if !detail {
		metricProfiles.Inc()
		return tr, nil
	}

	tr.Layers = make([]LayerRecord, len(prep.layers))
	copy(tr.Layers, prep.layers)
	// One backing array holds every kernel event of the trace; each layer
	// gets a zero-length slice over its disjoint region, so the launch-order
	// append loop below never reallocates even though training-pass layer
	// indices are not monotone.
	backing := make([]KernelEvent, len(ks))
	off := 0
	for i, c := range prep.layerKernels {
		tr.Layers[i].Kernels = backing[off : off : off+c]
		off += c
	}

	var cursor float64
	for i, k := range ks {
		avg := sumDur[i] / float64(batches)
		ev := KernelEvent{
			Name:       k.Name,
			LayerIndex: prep.layerIdx[i],
			Start:      cursor,
			Duration:   avg,
			Kernel:     k,
		}
		cursor += avg
		lr := &tr.Layers[prep.layerIdx[i]]
		lr.Kernels = append(lr.Kernels, ev)
		lr.Duration += avg
		tr.KernelSum += avg
	}
	metricProfiles.Inc()
	return tr, nil
}

// growScratch resizes a reusable buffer to n elements, reallocating only when
// capacity is exceeded. Contents are unspecified.
func growScratch(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}
