package profiler

import (
	"errors"
	"math"
	"testing"

	"repro/internal/dnn"
	"repro/internal/gpu"
	"repro/internal/kernels"
	"repro/internal/sim"
	"repro/internal/zoo"
)

func profileResNet18(t *testing.T, g gpu.Spec, batch int) *Trace {
	t.Helper()
	net := zoo.MustResNet(18)
	tr, err := NewFast(sim.NewDefault(g), 5).Profile(net, batch)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTraceStructure(t *testing.T) {
	tr := profileResNet18(t, gpu.A100, 8)
	if tr.Network != "resnet18" || tr.GPU != "A100" || tr.BatchSize != 8 {
		t.Fatalf("trace identity: %s/%s/%d", tr.Network, tr.GPU, tr.BatchSize)
	}
	if tr.TotalFLOPs <= 0 {
		t.Fatal("TotalFLOPs not set")
	}
	if len(tr.Layers) == 0 {
		t.Fatal("no layer records")
	}
	net := zoo.MustResNet(18)
	if len(tr.Layers) != len(net.Layers) {
		t.Fatalf("layer record count %d != network layer count %d", len(tr.Layers), len(net.Layers))
	}
}

func TestLayerKernelMapping(t *testing.T) {
	// The trace must reproduce Figure 2's property: every kernel event links
	// back to the layer that launched it, and layer durations are the sum of
	// their kernels.
	tr := profileResNet18(t, gpu.A100, 8)
	var kernelSum float64
	for _, l := range tr.Layers {
		var laySum float64
		for _, ev := range l.Kernels {
			if ev.LayerIndex != l.Index {
				t.Fatalf("kernel %q links to layer %d, recorded under %d", ev.Name, ev.LayerIndex, l.Index)
			}
			if ev.Duration <= 0 {
				t.Fatalf("kernel %q has non-positive duration", ev.Name)
			}
			laySum += ev.Duration
		}
		if len(l.Kernels) > 0 && math.Abs(laySum-l.Duration)/l.Duration > 1e-9 {
			t.Fatalf("layer %d duration %v != kernel sum %v", l.Index, l.Duration, laySum)
		}
		kernelSum += laySum
	}
	if math.Abs(kernelSum-tr.KernelSum)/tr.KernelSum > 1e-9 {
		t.Fatalf("KernelSum %v != Σ layers %v", tr.KernelSum, kernelSum)
	}
}

func TestKernelStartsMonotone(t *testing.T) {
	tr := profileResNet18(t, gpu.A100, 8)
	events := tr.KernelEvents()
	for i := 1; i < len(events); i++ {
		if events[i].Start < events[i-1].Start {
			t.Fatalf("event %d starts before its predecessor", i)
		}
	}
}

func TestE2EBelowKernelSum(t *testing.T) {
	// Pipelining means measured wall time is below the sum of individually
	// measured kernel durations (minus the small batch floor).
	tr := profileResNet18(t, gpu.A100, 64)
	if tr.E2ETime >= tr.KernelSum*1.05 {
		t.Fatalf("E2E %v should not exceed kernel sum %v by much", tr.E2ETime, tr.KernelSum)
	}
	if tr.E2ETime <= tr.KernelSum*0.5 {
		t.Fatalf("E2E %v implausibly below kernel sum %v", tr.E2ETime, tr.KernelSum)
	}
}

func TestDeterministicTraces(t *testing.T) {
	a := profileResNet18(t, gpu.A100, 8)
	b := profileResNet18(t, gpu.A100, 8)
	if a.E2ETime != b.E2ETime || a.KernelSum != b.KernelSum {
		t.Fatal("profiling is not reproducible")
	}
}

func TestDifferentBatchDifferentSeed(t *testing.T) {
	a := profileResNet18(t, gpu.A100, 8)
	b := profileResNet18(t, gpu.A100, 16)
	if b.E2ETime <= a.E2ETime {
		t.Fatalf("doubling the batch should increase time: %v vs %v", a.E2ETime, b.E2ETime)
	}
}

func TestOutOfMemory(t *testing.T) {
	net := zoo.MustVGG(16, false)
	_, err := NewFast(sim.NewDefault(gpu.QuadroP620), 2).Profile(net, 512)
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestAveragingReducesNoise(t *testing.T) {
	// With more measured batches the averaged E2E approaches the noiseless
	// assembly; compare deviation across two measurement protocols.
	net := zoo.MustResNet(18)
	dev := sim.NewDefault(gpu.A100)

	// Noise-free reference: σ = 0 device.
	quiet := sim.New(gpu.A100, sim.Config{NoiseSigma: -1})
	ref, err := NewFast(quiet, 1).Profile(net, 8)
	if err != nil {
		t.Fatal(err)
	}

	few, err := NewFast(dev, 2).Profile(net, 8)
	if err != nil {
		t.Fatal(err)
	}
	many, err := NewFast(dev, 60).Profile(net, 8)
	if err != nil {
		t.Fatal(err)
	}
	devFew := math.Abs(few.KernelSum-ref.KernelSum) / ref.KernelSum
	devMany := math.Abs(many.KernelSum-ref.KernelSum) / ref.KernelSum
	// Individual draws are random, so compare against absolute budgets: the
	// σ=3 % per-invocation noise must average below 1 % over 60 batches and
	// below 5 % over 2.
	if devMany > 0.01 {
		t.Fatalf("60-batch average deviates %.3f%% from noiseless", devMany*100)
	}
	if devFew > 0.05 {
		t.Fatalf("2-batch average deviates %.3f%% from noiseless", devFew*100)
	}
}

func TestProfileErrors(t *testing.T) {
	p := New(sim.NewDefault(gpu.A100))
	net := zoo.MustResNet(18)
	if _, err := p.Profile(net, 0); err == nil {
		t.Fatal("batch 0 should error")
	}
	bad := dnn.New("bad", "Test", dnn.TaskImageClassification, dnn.Shape{3, 8, 8})
	bad.Conv(dnn.NetworkInput, 7, 3, 1, 1, 0) // channel mismatch
	if _, err := p.Profile(bad, 4); err == nil {
		t.Fatal("invalid network should error")
	}
}

func TestKernelEventFeatures(t *testing.T) {
	tr := profileResNet18(t, gpu.A100, 8)
	for _, ev := range tr.KernelEvents() {
		if ev.Name == "" || ev.Name != ev.Kernel.Name {
			t.Fatalf("event name mismatch: %q vs %q", ev.Name, ev.Kernel.Name)
		}
		if ev.Kernel.LayerInputElems <= 0 || ev.Kernel.LayerOutputElems <= 0 {
			t.Fatalf("kernel %q missing driver features", ev.Name)
		}
	}
}

func TestViewLayersHaveNoKernels(t *testing.T) {
	tr := profileResNet18(t, gpu.A100, 8)
	net := zoo.MustResNet(18)
	if err := net.Infer(8); err != nil {
		t.Fatal(err)
	}
	for i, l := range net.Layers {
		wantKernels := len(kernels.ForLayer(l))
		if got := len(tr.Layers[i].Kernels); got != wantKernels {
			t.Fatalf("layer %d (%s): %d kernel events, want %d", i, l.Kind, got, wantKernels)
		}
	}
}
