// Package registry provides a versioned, immutable model registry with
// atomic hot-swap. A serving replica holds exactly one Registry; publishing
// a newly fitted (or newly loaded) coefficient set installs it as the
// current snapshot in one atomic pointer store, so requests that already
// loaded the previous snapshot finish against the model they started with —
// a swap never drops or corrupts an in-flight prediction.
//
// Versions are monotonic per registry and start at 1. Snapshots are
// immutable: the registry never mutates a published model, and callers must
// treat the coefficient set behind a snapshot as read-only (the staleplan
// analyzer enforces that coefficients change only through blessed mutators).
//
// The registry keeps a bounded history of recent publications for the
// /modelz introspection endpoint, and exports swap counts through the obs
// registry so a fleet's model churn is visible next to its request metrics.
package registry

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Registry-level observability, aggregated across every registry in the
// process (a serving replica normally has one).
var (
	obsPublishes = obs.Default().Counter("registry_publishes_total",
		"Model snapshots published (including the initial warm-up publish).")
	obsSwaps = obs.Default().Counter("registry_swaps_total",
		"Model hot-swaps: publishes that replaced an already-serving snapshot.")
)

// historyCap bounds the per-registry publication log kept for introspection.
const historyCap = 16

// Snapshot is one published, immutable (version, model) pair.
type Snapshot struct {
	// Version is the registry-monotonic version ID, starting at 1.
	Version uint64
	// Model is the coefficient set serving under this version. Read-only.
	Model *core.KWModel
	// Source records where the model came from ("warmup", "swap", a file
	// path, ...) for the introspection surface.
	Source string
	// PublishedAt is the wall-clock publication instant.
	PublishedAt time.Time
}

// Entry is one row of the bounded publication history.
type Entry struct {
	Version     uint64    `json:"version"`
	Source      string    `json:"source"`
	GPU         string    `json:"gpu"`
	Kernels     int       `json:"kernels"`
	Groups      int       `json:"groups"`
	PublishedAt time.Time `json:"published_at"`
}

// Registry is a versioned model holder with atomic hot-swap. The zero value
// is ready to use and starts empty (Current returns nil until the first
// Publish).
type Registry struct {
	cur atomic.Pointer[Snapshot]

	// mu serializes publishers so version assignment and the history log
	// stay consistent; readers never take it.
	mu      sync.Mutex
	nextVer uint64
	history []Entry
}

// New returns an empty registry.
func New() *Registry { return &Registry{} }

// Publish installs model as the current snapshot under the next monotonic
// version and returns that snapshot. Publish is safe for concurrent use with
// readers and other publishers; readers that loaded the previous snapshot
// keep serving it untouched.
func (r *Registry) Publish(model *core.KWModel, source string) (*Snapshot, error) {
	if model == nil {
		return nil, fmt.Errorf("registry: cannot publish a nil model")
	}
	r.mu.Lock()
	r.nextVer++
	snap := &Snapshot{
		Version:     r.nextVer,
		Model:       model,
		Source:      source,
		PublishedAt: time.Now(),
	}
	swapped := r.cur.Load() != nil
	r.cur.Store(snap)
	r.history = append(r.history, Entry{
		Version: snap.Version, Source: source,
		GPU: model.GPUName(), Kernels: model.KernelCount(), Groups: model.ModelCount(),
		PublishedAt: snap.PublishedAt,
	})
	if len(r.history) > historyCap {
		r.history = r.history[len(r.history)-historyCap:]
	}
	r.mu.Unlock()

	obsPublishes.Inc()
	if swapped {
		obsSwaps.Inc()
	}
	return snap, nil
}

// Current returns the serving snapshot, or nil before the first Publish.
// The returned snapshot stays valid (and immutable) after later swaps.
func (r *Registry) Current() *Snapshot { return r.cur.Load() }

// Version returns the current version ID, or 0 before the first Publish.
func (r *Registry) Version() uint64 {
	if s := r.cur.Load(); s != nil {
		return s.Version
	}
	return 0
}

// History returns a copy of the bounded publication log, oldest first.
func (r *Registry) History() []Entry {
	r.mu.Lock()
	out := make([]Entry, len(r.history))
	copy(out, r.history)
	r.mu.Unlock()
	return out
}

// RegisterMetrics exposes this instance's current version through the global
// obs registry under the given metric name prefix. Registering the same
// prefix again rebinds the gauge to the newest instance.
func (r *Registry) RegisterMetrics(prefix string) {
	obs.Default().GaugeFunc(prefix+"_version",
		"Version ID of the model snapshot currently serving.",
		func() int64 { return int64(r.Version()) })
}
