package registry

import (
	"sync"
	"testing"

	"repro/internal/core"
)

func TestPublishMonotonicVersions(t *testing.T) {
	r := New()
	if r.Current() != nil || r.Version() != 0 {
		t.Fatalf("empty registry: Current=%v Version=%d", r.Current(), r.Version())
	}
	m1, m2 := &core.KWModel{GPU: "A100"}, &core.KWModel{GPU: "A100"}
	s1, err := r.Publish(m1, "warmup")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := r.Publish(m2, "swap")
	if err != nil {
		t.Fatal(err)
	}
	if s1.Version != 1 || s2.Version != 2 {
		t.Fatalf("versions %d, %d; want 1, 2", s1.Version, s2.Version)
	}
	if cur := r.Current(); cur != s2 || cur.Model != m2 {
		t.Fatalf("current = %+v, want the second snapshot", cur)
	}
	// The superseded snapshot must stay intact for in-flight readers.
	if s1.Model != m1 || s1.Source != "warmup" {
		t.Fatalf("old snapshot mutated: %+v", s1)
	}
}

func TestPublishNilRejected(t *testing.T) {
	if _, err := New().Publish(nil, "x"); err == nil {
		t.Fatal("publishing nil model succeeded")
	}
}

func TestHistoryBounded(t *testing.T) {
	r := New()
	m := &core.KWModel{GPU: "T4"}
	for i := 0; i < historyCap+5; i++ {
		if _, err := r.Publish(m, "swap"); err != nil {
			t.Fatal(err)
		}
	}
	h := r.History()
	if len(h) != historyCap {
		t.Fatalf("history length %d, want %d", len(h), historyCap)
	}
	// Oldest first, versions contiguous, ending at the current version.
	for i := 1; i < len(h); i++ {
		if h[i].Version != h[i-1].Version+1 {
			t.Fatalf("history versions not contiguous: %d then %d", h[i-1].Version, h[i].Version)
		}
	}
	if last := h[len(h)-1].Version; last != r.Version() {
		t.Fatalf("history ends at version %d, current is %d", last, r.Version())
	}
	if h[0].GPU != "T4" {
		t.Fatalf("history entry GPU = %q", h[0].GPU)
	}
}

// TestConcurrentPublishAndRead exercises the swap path under the race
// detector: readers must always observe a fully formed snapshot whose
// version never runs backwards.
func TestConcurrentPublishAndRead(t *testing.T) {
	r := New()
	const publishers, perPublisher = 4, 50
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				if s := r.Current(); s != nil {
					if s.Model == nil || s.Version == 0 {
						t.Error("observed a half-built snapshot")
						return
					}
					if s.Version < last {
						t.Errorf("version ran backwards: %d after %d", s.Version, last)
						return
					}
					last = s.Version
				}
			}
		}()
	}
	var pw sync.WaitGroup
	for p := 0; p < publishers; p++ {
		pw.Add(1)
		go func() {
			defer pw.Done()
			m := &core.KWModel{GPU: "A100"}
			for i := 0; i < perPublisher; i++ {
				if _, err := r.Publish(m, "swap"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	pw.Wait()
	close(stop)
	wg.Wait()
	if got := r.Version(); got != publishers*perPublisher {
		t.Fatalf("final version %d, want %d", got, publishers*perPublisher)
	}
}
