package regression

import (
	"fmt"
	"math"
)

// Multiple linear regression via the normal equations, sized for the
// handful-of-predictors calibration models this project needs (the
// small-batch CPU/overhead correction). A tiny ridge term keeps the solve
// stable when predictors are nearly collinear.

// MultiModel is a fitted linear model y = Coef·x + Intercept with k
// predictors.
type MultiModel struct {
	Coef      []float64
	Intercept float64
	// R2 is the coefficient of determination on the training data.
	R2 float64
	// N is the number of training points.
	N int
}

// Predict evaluates the model; x must have len(Coef) entries.
func (m MultiModel) Predict(x []float64) float64 {
	y := m.Intercept
	for i, c := range m.Coef {
		y += c * x[i]
	}
	return y
}

// ridgeEps is the relative ridge regularization of MultiFit.
const ridgeEps = 1e-9

// MultiFit fits y against the rows of x (each row one observation with k
// predictors) by least squares with an intercept.
func MultiFit(x [][]float64, y []float64) (MultiModel, error) {
	n := len(x)
	if n != len(y) {
		return MultiModel{}, fmt.Errorf("regression: mismatched lengths %d vs %d", n, len(y))
	}
	if n == 0 {
		return MultiModel{}, fmt.Errorf("%w: no points", ErrDegenerate)
	}
	k := len(x[0])
	if n < k+2 {
		return MultiModel{}, fmt.Errorf("%w: %d points for %d predictors", ErrDegenerate, n, k)
	}
	// Augment with the intercept column: d = k+1 coefficients.
	d := k + 1
	// Normal equations: (XᵀX) β = Xᵀy.
	xtx := make([][]float64, d)
	for i := range xtx {
		xtx[i] = make([]float64, d)
	}
	xty := make([]float64, d)
	row := make([]float64, d)
	for i := range x {
		if len(x[i]) != k {
			return MultiModel{}, fmt.Errorf("regression: row %d has %d predictors, want %d", i, len(x[i]), k)
		}
		copy(row, x[i])
		row[d-1] = 1
		for a := 0; a < d; a++ {
			for b := 0; b < d; b++ {
				xtx[a][b] += row[a] * row[b]
			}
			xty[a] += row[a] * y[i]
		}
	}
	// Ridge: scale-aware diagonal boost.
	for a := 0; a < d; a++ {
		xtx[a][a] += ridgeEps * (xtx[a][a] + 1)
	}

	beta, err := solve(xtx, xty)
	if err != nil {
		return MultiModel{}, err
	}
	m := MultiModel{Coef: beta[:k], Intercept: beta[k], N: n}

	var my float64
	for _, v := range y {
		my += v
	}
	my /= float64(n)
	var ssRes, ssTot float64
	for i := range x {
		r := y[i] - m.Predict(x[i])
		ssRes += r * r
		dd := y[i] - my
		ssTot += dd * dd
	}
	if ssTot > 0 {
		m.R2 = 1 - ssRes/ssTot
	} else if ssRes == 0 {
		m.R2 = 1
	}
	return m, nil
}

// solve performs Gaussian elimination with partial pivoting on a (small)
// symmetric positive-definite-ish system.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	// Work on copies.
	m := make([][]float64, n)
	for i := range a {
		m[i] = append([]float64(nil), a[i]...)
	}
	v := append([]float64(nil), b...)

	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-30 {
			return nil, fmt.Errorf("%w: singular system", ErrDegenerate)
		}
		m[col], m[pivot] = m[pivot], m[col]
		v[col], v[pivot] = v[pivot], v[col]
		// Eliminate.
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c < n; c++ {
				m[r][c] -= f * m[col][c]
			}
			v[r] -= f * v[col]
		}
	}
	// Back-substitute.
	out := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := v[r]
		for c := r + 1; c < n; c++ {
			s -= m[r][c] * out[c]
		}
		out[r] = s / m[r][r]
	}
	return out, nil
}
