package regression

import "math"

// Online (incremental) least squares. The paper argues its models are
// "more suitable for online learning (updating the model in the deployed
// environment in real-time)" (§5.2); an Accumulator makes that concrete:
// it maintains the sufficient statistics of a 1-D OLS fit so measurements
// can stream in one at a time, and two accumulators can merge exactly.

// Accumulator maintains running sums sufficient to produce the OLS line of
// everything added so far. The zero value is ready to use.
type Accumulator struct {
	n             int
	sx, sy        float64
	sxx, sxy, syy float64
}

// Add incorporates one observation.
func (a *Accumulator) Add(x, y float64) {
	a.n++
	a.sx += x
	a.sy += y
	a.sxx += x * x
	a.sxy += x * y
	a.syy += y * y
}

// AddAll incorporates paired slices (panics on length mismatch, as the
// caller controls both).
func (a *Accumulator) AddAll(xs, ys []float64) {
	if len(xs) != len(ys) {
		panic("regression: AddAll length mismatch")
	}
	for i := range xs {
		a.Add(xs[i], ys[i])
	}
}

// Merge folds another accumulator's observations into a. The result is
// identical to having Added both streams into one accumulator.
func (a *Accumulator) Merge(b Accumulator) {
	a.n += b.n
	a.sx += b.sx
	a.sy += b.sy
	a.sxx += b.sxx
	a.sxy += b.sxy
	a.syy += b.syy
}

// N returns the observation count.
func (a *Accumulator) N() int { return a.n }

// Line produces the OLS fit of everything accumulated.
func (a *Accumulator) Line() (Line, error) {
	if a.n < 2 {
		return Line{}, ErrDegenerate
	}
	nf := float64(a.n)
	mx, my := a.sx/nf, a.sy/nf
	sxx := a.sxx - nf*mx*mx
	if sxx <= 0 {
		return Line{}, ErrDegenerate
	}
	sxy := a.sxy - nf*mx*my
	slope := sxy / sxx
	intercept := my - slope*mx

	// R² from the sufficient statistics.
	ssTot := a.syy - nf*my*my
	ssRes := ssTot - slope*sxy
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
		if r2 < 0 {
			r2 = 0
		}
	}
	return Line{Slope: slope, Intercept: intercept, R2: r2, N: a.n}, nil
}

// RMSE returns the root-mean-square residual of the current OLS fit, or 0
// when the fit is degenerate.
func (a *Accumulator) RMSE() float64 {
	line, err := a.Line()
	if err != nil {
		return 0
	}
	nf := float64(a.n)
	my := a.sy / nf
	mx := a.sx / nf
	ssTot := a.syy - nf*my*my
	sxy := a.sxy - nf*mx*my
	ssRes := ssTot - line.Slope*sxy
	if ssRes < 0 {
		ssRes = 0
	}
	return math.Sqrt(ssRes / nf)
}

// MeanY returns the running mean of y (the constant-model fallback for
// degenerate accumulators), or 0 when empty.
func (a *Accumulator) MeanY() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sy / float64(a.n)
}
