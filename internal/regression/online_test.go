package regression

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAccumulatorMatchesBatchFit(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	var xs, ys []float64
	var acc Accumulator
	for i := 0; i < 500; i++ {
		x := rnd.Float64() * 100
		y := 3*x + 2 + rnd.NormFloat64()
		xs = append(xs, x)
		ys = append(ys, y)
		acc.Add(x, y)
	}
	batch, err := Fit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	online, err := acc.Line()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(batch.Slope-online.Slope) > 1e-9 ||
		math.Abs(batch.Intercept-online.Intercept) > 1e-7 {
		t.Fatalf("online %v vs batch %v", online, batch)
	}
	if math.Abs(batch.R2-online.R2) > 1e-6 {
		t.Fatalf("R²: online %v vs batch %v", online.R2, batch.R2)
	}
	if online.N != 500 || acc.N() != 500 {
		t.Fatalf("N = %d", online.N)
	}
}

func TestAccumulatorMergeExact(t *testing.T) {
	rnd := rand.New(rand.NewSource(2))
	var whole, a, b Accumulator
	for i := 0; i < 200; i++ {
		x, y := rnd.Float64(), rnd.Float64()
		whole.Add(x, y)
		if i%2 == 0 {
			a.Add(x, y)
		} else {
			b.Add(x, y)
		}
	}
	a.Merge(b)
	lw, err1 := whole.Line()
	lm, err2 := a.Line()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if math.Abs(lw.Slope-lm.Slope) > 1e-12 || math.Abs(lw.Intercept-lm.Intercept) > 1e-12 {
		t.Fatalf("merge differs: %v vs %v", lm, lw)
	}
}

func TestAccumulatorDegenerate(t *testing.T) {
	var acc Accumulator
	if _, err := acc.Line(); !errors.Is(err, ErrDegenerate) {
		t.Fatal("empty accumulator should be degenerate")
	}
	acc.Add(5, 1)
	acc.Add(5, 3)
	if _, err := acc.Line(); !errors.Is(err, ErrDegenerate) {
		t.Fatal("zero x-variance should be degenerate")
	}
	if acc.MeanY() != 2 {
		t.Fatalf("MeanY = %v", acc.MeanY())
	}
}

func TestAccumulatorAddAll(t *testing.T) {
	var acc Accumulator
	acc.AddAll([]float64{1, 2, 3}, []float64{2, 4, 6})
	line, err := acc.Line()
	if err != nil || math.Abs(line.Slope-2) > 1e-12 {
		t.Fatalf("line = %v, %v", line, err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	acc.AddAll([]float64{1}, nil)
}

func TestMultiFitRecoversPlane(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 300; i++ {
		a, b := rnd.Float64()*10, rnd.Float64()*5
		xs = append(xs, []float64{a, b})
		ys = append(ys, 2*a-3*b+7)
	}
	m, err := MultiFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coef[0]-2) > 1e-6 || math.Abs(m.Coef[1]+3) > 1e-6 ||
		math.Abs(m.Intercept-7) > 1e-5 {
		t.Fatalf("MultiFit = %+v", m)
	}
	if m.R2 < 0.999999 {
		t.Fatalf("R² = %v", m.R2)
	}
	if got := m.Predict([]float64{1, 1}); math.Abs(got-6) > 1e-5 {
		t.Fatalf("Predict = %v", got)
	}
}

func TestMultiFitMatchesSimpleFit(t *testing.T) {
	// With one predictor, MultiFit must agree with Fit.
	rnd := rand.New(rand.NewSource(4))
	var xs1 []float64
	var xsM [][]float64
	var ys []float64
	for i := 0; i < 100; i++ {
		x := rnd.Float64() * 50
		xs1 = append(xs1, x)
		xsM = append(xsM, []float64{x})
		ys = append(ys, 1.5*x+rnd.NormFloat64())
	}
	simple, err := Fit(xs1, ys)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := MultiFit(xsM, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(simple.Slope-multi.Coef[0]) > 1e-6 ||
		math.Abs(simple.Intercept-multi.Intercept) > 1e-6 {
		t.Fatalf("simple %v vs multi %+v", simple, multi)
	}
}

func TestMultiFitErrors(t *testing.T) {
	if _, err := MultiFit(nil, nil); !errors.Is(err, ErrDegenerate) {
		t.Fatal("empty input")
	}
	if _, err := MultiFit([][]float64{{1, 2}}, []float64{1}); !errors.Is(err, ErrDegenerate) {
		t.Fatal("too few points for two predictors")
	}
	if _, err := MultiFit([][]float64{{1}, {2}}, []float64{1}); err == nil {
		t.Fatal("mismatched lengths")
	}
	if _, err := MultiFit([][]float64{{1}, {2}, {3, 4}, {5}}, []float64{1, 2, 3, 4}); err == nil {
		t.Fatal("ragged rows")
	}
}

// TestAccumulatorStreamingProperty: any prefix order of the same points
// yields the same final line.
func TestAccumulatorStreamingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		n := rnd.Intn(40) + 5
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rnd.Float64() * 100
			ys[i] = rnd.Float64() * 100
		}
		var fwd, rev Accumulator
		for i := 0; i < n; i++ {
			fwd.Add(xs[i], ys[i])
			rev.Add(xs[n-1-i], ys[n-1-i])
		}
		lf, ef := fwd.Line()
		lr, er := rev.Line()
		if ef != nil || er != nil {
			return errors.Is(ef, ErrDegenerate) == errors.Is(er, ErrDegenerate)
		}
		return math.Abs(lf.Slope-lr.Slope) < 1e-9 && math.Abs(lf.Intercept-lr.Intercept) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
