// Package regression implements the ordinary-least-squares machinery the
// paper's performance models are built from. The paper's central methodology
// claim is that *simple linear regression* — not PCA, not neural networks —
// suffices for DNN workloads on GPUs, so this package deliberately contains
// nothing fancier: 1-D OLS with R², optional through-origin fits, and the
// summary statistics the experiment harness reports.
package regression

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrDegenerate is returned when a fit is requested on data that cannot
// determine the parameters (fewer than two points, or zero variance in x).
var ErrDegenerate = errors.New("regression: degenerate data")

// Line is a fitted linear model y = Slope·x + Intercept.
type Line struct {
	Slope     float64
	Intercept float64
	// R2 is the coefficient of determination of the fit on its training
	// data.
	R2 float64
	// N is the number of training points.
	N int
}

// Predict evaluates the line at x.
func (l Line) Predict(x float64) float64 { return l.Slope*x + l.Intercept }

// String implements fmt.Stringer.
func (l Line) String() string {
	return fmt.Sprintf("y = %.6g·x + %.6g (R²=%.4f, n=%d)", l.Slope, l.Intercept, l.R2, l.N)
}

// Fit computes the ordinary-least-squares line through (x, y).
func Fit(x, y []float64) (Line, error) {
	if len(x) != len(y) {
		return Line{}, fmt.Errorf("regression: mismatched lengths %d vs %d", len(x), len(y))
	}
	n := len(x)
	if n < 2 {
		return Line{}, fmt.Errorf("%w: %d points", ErrDegenerate, n)
	}
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, sxy float64
	for i := range x {
		dx := x[i] - mx
		sxx += dx * dx
		sxy += dx * (y[i] - my)
	}
	if sxx == 0 {
		return Line{}, fmt.Errorf("%w: zero variance in x", ErrDegenerate)
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	return Line{Slope: slope, Intercept: intercept, R2: r2(x, y, slope, intercept), N: n}, nil
}

// FitOrigin computes the least-squares line through the origin,
// y = Slope·x. Useful when the physical model has no offset (e.g. FLOPS as
// the reciprocal of a slope).
func FitOrigin(x, y []float64) (Line, error) {
	if len(x) != len(y) {
		return Line{}, fmt.Errorf("regression: mismatched lengths %d vs %d", len(x), len(y))
	}
	if len(x) == 0 {
		return Line{}, fmt.Errorf("%w: no points", ErrDegenerate)
	}
	var sxx, sxy float64
	for i := range x {
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	if sxx == 0 {
		return Line{}, fmt.Errorf("%w: all x are zero", ErrDegenerate)
	}
	slope := sxy / sxx
	return Line{Slope: slope, R2: r2(x, y, slope, 0), N: len(x)}, nil
}

// FitLogLog fits log(y) = a·log(x) + b and reports the fit in log space,
// used by the analysis figures that work on log-log axes (Figure 3/7).
func FitLogLog(x, y []float64) (Line, error) {
	lx := make([]float64, 0, len(x))
	ly := make([]float64, 0, len(y))
	for i := range x {
		if x[i] <= 0 || y[i] <= 0 {
			continue
		}
		lx = append(lx, math.Log(x[i]))
		ly = append(ly, math.Log(y[i]))
	}
	return Fit(lx, ly)
}

// r2 computes the coefficient of determination of y against the line.
func r2(x, y []float64, slope, intercept float64) float64 {
	var my float64
	for _, v := range y {
		my += v
	}
	my /= float64(len(y))
	var ssRes, ssTot float64
	for i := range y {
		r := y[i] - (slope*x[i] + intercept)
		ssRes += r * r
		d := y[i] - my
		ssTot += d * d
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// Pearson returns the Pearson correlation coefficient of (x, y), or 0 when
// either variable has zero variance.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return 0
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var sxx, syy, sxy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// RelativeErrors returns |pred-actual|/actual for each pair, skipping pairs
// with non-positive actuals.
func RelativeErrors(pred, actual []float64) []float64 {
	out := make([]float64, 0, len(pred))
	for i := range pred {
		if i >= len(actual) || actual[i] <= 0 {
			continue
		}
		out = append(out, math.Abs(pred[i]-actual[i])/actual[i])
	}
	return out
}

// Mean returns the arithmetic mean, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Median returns the median, or 0 for empty input.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	m := len(c) / 2
	if len(c)%2 == 1 {
		return c[m]
	}
	return (c[m-1] + c[m]) / 2
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) by linear
// interpolation, or 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	if p <= 0 {
		return c[0]
	}
	if p >= 100 {
		return c[len(c)-1]
	}
	pos := p / 100 * float64(len(c)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(c) {
		return c[lo]
	}
	return c[lo]*(1-frac) + c[lo+1]*frac
}

// FitStats carries the uncertainty statistics of an OLS fit.
type FitStats struct {
	// RMSE is the root-mean-square residual of the fit.
	RMSE float64
	// SlopeSE and InterceptSE are the standard errors of the parameters.
	SlopeSE, InterceptSE float64
}

// FitDetail is Fit plus the residual and parameter uncertainty statistics.
func FitDetail(x, y []float64) (Line, FitStats, error) {
	line, err := Fit(x, y)
	if err != nil {
		return Line{}, FitStats{}, err
	}
	n := float64(len(x))
	var sx float64
	for _, v := range x {
		sx += v
	}
	mx := sx / n
	var sxx, ssRes float64
	for i := range x {
		dx := x[i] - mx
		sxx += dx * dx
		r := y[i] - line.Predict(x[i])
		ssRes += r * r
	}
	stats := FitStats{RMSE: math.Sqrt(ssRes / n)}
	if n > 2 && sxx > 0 {
		s2 := ssRes / (n - 2) // unbiased residual variance
		stats.SlopeSE = math.Sqrt(s2 / sxx)
		stats.InterceptSE = math.Sqrt(s2 * (1/n + mx*mx/sxx))
	}
	return line, stats, nil
}
