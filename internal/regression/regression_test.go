package regression

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitExactLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x + 7
	}
	line, err := Fit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(line.Slope-3) > 1e-12 || math.Abs(line.Intercept-7) > 1e-12 {
		t.Fatalf("Fit = %v", line)
	}
	if line.R2 != 1 {
		t.Fatalf("R² = %v, want 1", line.R2)
	}
	if line.N != 5 {
		t.Fatalf("N = %d", line.N)
	}
	if got := line.Predict(10); math.Abs(got-37) > 1e-12 {
		t.Fatalf("Predict(10) = %v", got)
	}
}

func TestFitNoisyLine(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	var xs, ys []float64
	for i := 0; i < 2000; i++ {
		x := rnd.Float64() * 100
		xs = append(xs, x)
		ys = append(ys, 2.5*x+4+rnd.NormFloat64())
	}
	line, err := Fit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(line.Slope-2.5) > 0.01 {
		t.Fatalf("slope = %v, want ≈ 2.5", line.Slope)
	}
	if math.Abs(line.Intercept-4) > 0.5 {
		t.Fatalf("intercept = %v, want ≈ 4", line.Intercept)
	}
	if line.R2 < 0.99 {
		t.Fatalf("R² = %v", line.R2)
	}
}

func TestFitDegenerate(t *testing.T) {
	if _, err := Fit([]float64{1}, []float64{2}); !errors.Is(err, ErrDegenerate) {
		t.Fatalf("single point: err = %v", err)
	}
	if _, err := Fit([]float64{3, 3, 3}, []float64{1, 2, 3}); !errors.Is(err, ErrDegenerate) {
		t.Fatalf("zero x variance: err = %v", err)
	}
	if _, err := Fit([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("mismatched lengths should error")
	}
}

func TestFitOrigin(t *testing.T) {
	xs := []float64{1, 2, 4}
	ys := []float64{3, 6, 12}
	line, err := FitOrigin(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(line.Slope-3) > 1e-12 || line.Intercept != 0 {
		t.Fatalf("FitOrigin = %v", line)
	}
	if _, err := FitOrigin([]float64{0, 0}, []float64{1, 2}); !errors.Is(err, ErrDegenerate) {
		t.Fatalf("all-zero x: err = %v", err)
	}
	if _, err := FitOrigin(nil, nil); !errors.Is(err, ErrDegenerate) {
		t.Fatal("empty input should be degenerate")
	}
}

func TestFitLogLog(t *testing.T) {
	// y = 2·x^1.5 → log y = 1.5 log x + log 2.
	var xs, ys []float64
	for x := 1.0; x <= 64; x *= 2 {
		xs = append(xs, x)
		ys = append(ys, 2*math.Pow(x, 1.5))
	}
	// Non-positive points must be skipped, not crash the fit.
	xs = append(xs, 0, -3)
	ys = append(ys, 5, 5)
	line, err := FitLogLog(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(line.Slope-1.5) > 1e-9 {
		t.Fatalf("log-log slope = %v", line.Slope)
	}
	if math.Abs(line.Intercept-math.Log(2)) > 1e-9 {
		t.Fatalf("log-log intercept = %v", line.Intercept)
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if got := Pearson(x, []float64{2, 4, 6, 8}); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect positive: %v", got)
	}
	if got := Pearson(x, []float64{8, 6, 4, 2}); math.Abs(got+1) > 1e-12 {
		t.Errorf("perfect negative: %v", got)
	}
	if got := Pearson(x, []float64{5, 5, 5, 5}); got != 0 {
		t.Errorf("zero variance: %v", got)
	}
	if got := Pearson(x[:1], []float64{1}); got != 0 {
		t.Errorf("too few points: %v", got)
	}
}

func TestRelativeErrors(t *testing.T) {
	got := RelativeErrors([]float64{11, 9, 5}, []float64{10, 10, 0})
	if len(got) != 2 {
		t.Fatalf("len = %d (non-positive actuals must be skipped)", len(got))
	}
	if math.Abs(got[0]-0.1) > 1e-12 || math.Abs(got[1]-0.1) > 1e-12 {
		t.Fatalf("got %v", got)
	}
}

func TestSummaryStatistics(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if got := Mean(xs); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Median(xs); got != 2.5 {
		t.Errorf("Median = %v", got)
	}
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd Median = %v", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("P0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 4 {
		t.Errorf("P100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 2.5 {
		t.Errorf("P50 = %v", got)
	}
	if Mean(nil) != 0 || Median(nil) != 0 || Percentile(nil, 50) != 0 {
		t.Error("empty inputs should return 0")
	}
	// Percentile must not mutate its input.
	if xs[0] != 4 {
		t.Error("Percentile sorted the caller's slice")
	}
}

// TestFitRecoversPlantedLine is the property-based core: OLS must recover an
// arbitrary noiseless planted line exactly (up to float error).
func TestFitRecoversPlantedLine(t *testing.T) {
	f := func(slopeRaw, interceptRaw int16, seed int64) bool {
		slope := float64(slopeRaw) / 64
		intercept := float64(interceptRaw) / 64
		rnd := rand.New(rand.NewSource(seed))
		var xs, ys []float64
		for i := 0; i < 50; i++ {
			x := rnd.Float64()*1000 - 500
			xs = append(xs, x)
			ys = append(ys, slope*x+intercept)
		}
		line, err := Fit(xs, ys)
		if err != nil {
			return false
		}
		return math.Abs(line.Slope-slope) < 1e-6 && math.Abs(line.Intercept-intercept) < 1e-4
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestR2Bounded: R² of any fit on its own training data is at most 1 and,
// for OLS with intercept, at least 0.
func TestR2Bounded(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		var xs, ys []float64
		for i := 0; i < 20; i++ {
			xs = append(xs, rnd.Float64()*10)
			ys = append(ys, rnd.Float64()*10)
		}
		line, err := Fit(xs, ys)
		if err != nil {
			// Possible only if all x collide, which is vanishingly unlikely
			// but legal.
			return errors.Is(err, ErrDegenerate)
		}
		return line.R2 <= 1+1e-12 && line.R2 >= -1e-12
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(8))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestLineString(t *testing.T) {
	l := Line{Slope: 2, Intercept: 1, R2: 0.5, N: 3}
	if s := l.String(); s == "" {
		t.Fatal("empty String()")
	}
}
