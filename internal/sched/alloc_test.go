package sched

import "testing"

// The satellite fix behind these tests: gpuNames re-sorted into a fresh
// slice and finishAssignment re-allocated its Load map on every call. The
// Into variants sort/recompute into caller-owned buffers; these regression
// tests pin the steady-state allocation counts at zero.

func TestFinishAssignmentIntoAllocFree(t *testing.T) {
	tm := twoGPUTimes()
	a := Assignment{GPUOf: []string{"fast", "slow", "fast", "slow"}}
	load := make(map[string]float64, len(tm))
	finishAssignmentInto(&a, tm, load) // warm the map's buckets
	allocs := testing.AllocsPerRun(100, func() {
		finishAssignmentInto(&a, tm, load)
	})
	if allocs != 0 {
		t.Fatalf("finishAssignmentInto allocated %.1f objects per call, want 0", allocs)
	}
}

func TestGPUNamesIntoAllocFree(t *testing.T) {
	tm := twoGPUTimes()
	buf := make([]string, 0, len(tm))
	allocs := testing.AllocsPerRun(100, func() {
		buf = tm.gpuNamesInto(buf)
	})
	if allocs != 0 {
		t.Fatalf("gpuNamesInto allocated %.1f objects per call with a warm buffer, want 0", allocs)
	}
}

// TestMoveEvalAllocFree pins the //dnnperf:allocfree contract of the
// incremental hot path: evaluating and applying moves/swaps in steady
// state allocates nothing.
func TestMoveEvalAllocFree(t *testing.T) {
	dt := Synthetic(2000, 8, 3)
	rng := newSplitMix(9)
	s := randomState(dt, rng)
	allocs := testing.AllocsPerRun(1000, func() {
		i := rng.intn(s.n)
		to := int32(rng.intn(s.g - 1))
		if to >= s.gpuOf[i] {
			to++
		}
		_ = s.evalMove(i, to)
		j := rng.intn(s.n)
		if s.gpuOf[i] != s.gpuOf[j] {
			if s.evalSwap(i, j) < 2*s.span {
				s.applySwap(i, j) // swap application is list-append-free
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state move evaluation allocated %.2f objects per round, want 0", allocs)
	}
}
