package sched

import "testing"

// BenchmarkScheduleLocalSearch is the gated end-to-end search benchmark:
// one full Schedule pipeline (mins, lower bound, construction, 4-restart
// anneal + descent) over a 10⁵-task × 8-GPU instance.
func BenchmarkScheduleLocalSearch(b *testing.B) {
	dt := Synthetic(100_000, 8, 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Schedule(dt, SearchOptions{Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		if res.Gap > 0.10 {
			b.Fatalf("gap %v above budget", res.Gap)
		}
	}
}

// BenchmarkDenseTimesBuild measures converting a map-form Times table into
// the dense gpu-major layout for a 10⁵-task × 8-GPU fleet.
func BenchmarkDenseTimesBuild(b *testing.B) {
	tm := Synthetic(100_000, 8, 7).Times()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromTimes(tm, 100_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheduleMoveEval is the 0 allocs/op gate on the incremental
// move-evaluation hot path: each op evaluates a move and a swap and applies
// the swap — all annotated //dnnperf:allocfree, all O(1).
func BenchmarkScheduleMoveEval(b *testing.B) {
	dt := Synthetic(10_000, 8, 5)
	rng := newSplitMix(5)
	s := randomState(dt, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		i := rng.intn(s.n)
		to := int32(rng.intn(s.g - 1))
		if to >= s.gpuOf[i] {
			to++
		}
		_ = s.evalMove(i, to)
		j := rng.intn(s.n)
		if s.gpuOf[i] != s.gpuOf[j] {
			if s.evalSwap(i, j) < 2*s.span {
				s.applySwap(i, j)
			}
		}
	}
}

// BenchmarkListSchedule isolates the construction heuristic at the same
// scale as the search benchmark.
func BenchmarkListSchedule(b *testing.B) {
	dt := Synthetic(100_000, 8, 11)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ListSchedule(dt, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLowerBound isolates the certified-bound computation (taskMins,
// Lagrangian ascent, exclusion bisection).
func BenchmarkLowerBound(b *testing.B) {
	dt := Synthetic(100_000, 8, 13)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LowerBound(dt); err != nil {
			b.Fatal(err)
		}
	}
}
