package sched

import (
	"fmt"
	"math"
	"slices"
)

// DenseTimes is the slice-backed time table the cluster-scale optimizer
// works on: one gpu-major []float64 with an interned GPU index, replacing
// the map-of-slices Times on every hot path. For 10⁶ tasks × dozens of
// GPU types the flat layout keeps a full table scan sequential in memory
// and makes row fills (one core.PredictSweep pass per (network, GPU))
// plain slice writes.
type DenseTimes struct {
	gpus  []string       // interned GPU names; index is the GPU id
	index map[string]int // name → id
	n     int            // task count
	t     []float64      // gpu-major: t[g*n+i] is task i's seconds on GPU g
}

// NewDenseTimes allocates an empty table for nTasks tasks on the given
// GPUs, preserving their order as the interned ids. Fill rows via Row and
// check the result with Validate.
func NewDenseTimes(gpus []string, nTasks int) (*DenseTimes, error) {
	if len(gpus) == 0 {
		return nil, fmt.Errorf("sched: no GPUs")
	}
	if nTasks <= 0 {
		return nil, fmt.Errorf("sched: task count %d must be positive", nTasks)
	}
	dt := &DenseTimes{
		gpus:  append([]string(nil), gpus...),
		index: make(map[string]int, len(gpus)),
		n:     nTasks,
		t:     make([]float64, len(gpus)*nTasks),
	}
	for g, name := range gpus {
		if name == "" {
			return nil, fmt.Errorf("sched: GPU %d has an empty name", g)
		}
		if _, dup := dt.index[name]; dup {
			return nil, fmt.Errorf("sched: duplicate GPU name %q", name)
		}
		dt.index[name] = g
	}
	return dt, nil
}

// FromTimes converts a map-form Times table into its dense representation.
// GPU ids follow sorted name order, so the conversion — and everything the
// optimizer derives from it — is deterministic.
func FromTimes(tm Times, nTasks int) (*DenseTimes, error) {
	if err := tm.Validate(nTasks); err != nil {
		return nil, err
	}
	dt, err := NewDenseTimes(tm.gpuNames(), nTasks)
	if err != nil {
		return nil, err
	}
	for g, name := range dt.gpus {
		copy(dt.Row(g), tm[name])
	}
	return dt, nil
}

// NumGPUs returns the GPU count.
func (dt *DenseTimes) NumGPUs() int { return len(dt.gpus) }

// NumTasks returns the task count.
func (dt *DenseTimes) NumTasks() int { return dt.n }

// GPUs returns the interned GPU names; the slice is shared and must be
// treated as read-only.
func (dt *DenseTimes) GPUs() []string { return dt.gpus }

// GPUIndex resolves a GPU name to its interned id.
func (dt *DenseTimes) GPUIndex(name string) (int, bool) {
	g, ok := dt.index[name]
	return g, ok
}

// At returns task i's time on GPU g, in seconds.
func (dt *DenseTimes) At(g, i int) float64 { return dt.t[g*dt.n+i] }

// Row returns GPU g's full per-task row, aliasing the backing array so
// table builders fill it in place.
func (dt *DenseTimes) Row(g int) []float64 { return dt.t[g*dt.n : (g+1)*dt.n] }

// Validate checks every entry is positive and finite.
func (dt *DenseTimes) Validate() error {
	for g := range dt.gpus {
		row := dt.Row(g)
		for i, v := range row {
			if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("sched: GPU %q task %d has non-positive time %v", dt.gpus[g], i, v)
			}
		}
	}
	return nil
}

// Times converts back to the map form the small-instance API consumes.
func (dt *DenseTimes) Times() Times {
	tm := make(Times, len(dt.gpus))
	for g, name := range dt.gpus {
		tm[name] = append([]float64(nil), dt.Row(g)...)
	}
	return tm
}

// DenseAssignment maps each task to an interned GPU id, with per-GPU loads
// and the makespan. It is the index-form counterpart of Assignment, sized
// for millions of tasks (4 bytes per task instead of a string header).
type DenseAssignment struct {
	// GPUOf[i] is the interned id of the GPU task i runs on.
	GPUOf []int32
	// Load[g] is GPU g's total assigned time, seconds.
	Load []float64
	// Makespan is the maximum load.
	Makespan float64
}

// finishDense recomputes loads and makespan from GPUOf with one
// from-scratch pass, clearing any drift incremental updates accumulated.
// Tasks sum in index order, so the result is deterministic.
func finishDense(a *DenseAssignment, dt *DenseTimes) {
	if len(a.Load) != len(dt.gpus) {
		a.Load = make([]float64, len(dt.gpus))
	}
	for g := range a.Load {
		a.Load[g] = 0
	}
	for i, g := range a.GPUOf {
		a.Load[g] += dt.t[int(g)*dt.n+i]
	}
	a.Makespan = 0
	for _, l := range a.Load {
		if l > a.Makespan {
			a.Makespan = l
		}
	}
}

// Assignment expands the index form into the map-form Assignment used by
// the small-instance API and the case-study figures.
func (a *DenseAssignment) Assignment(dt *DenseTimes) Assignment {
	out := Assignment{
		GPUOf:    make([]string, len(a.GPUOf)),
		Load:     make(map[string]float64, len(dt.gpus)),
		Makespan: a.Makespan,
	}
	for i, g := range a.GPUOf {
		out.GPUOf[i] = dt.gpus[g]
	}
	for g, name := range dt.gpus {
		out.Load[name] = a.Load[g]
	}
	return out
}

// Synthetic builds a seeded heterogeneous benchmark instance: each GPU gets
// a fleet-speed factor, each task a work size drawn log-uniformly across
// three orders of magnitude, and each (task, GPU) pair an affinity jitter —
// the unrelated-machines structure real DNN fleets show (a kernel mix that
// is fast on one architecture is not uniformly fast on another). The same
// (nTasks, nGPUs, seed) triple always produces the same table.
func Synthetic(nTasks, nGPUs int, seed int64) *DenseTimes {
	names := make([]string, nGPUs)
	for g := range names {
		names[g] = fmt.Sprintf("gpu%02d", g)
	}
	dt, err := NewDenseTimes(names, nTasks)
	if err != nil {
		panic(err) // nTasks/nGPUs are caller constants; misuse is a bug
	}
	rng := newSplitMix(uint64(seed))
	speed := make([]float64, nGPUs)
	for g := range speed {
		speed[g] = 0.5 + 1.5*rng.float64() // 0.5x–2x fleet heterogeneity
	}
	work := make([]float64, nTasks)
	for i := range work {
		// log-uniform task sizes over [1ms, 1s] — a queue of small CNNs and
		// the occasional giant transformer, per the paper's zoo spread.
		work[i] = 1e-3 * math.Pow(10, 3*rng.float64())
	}
	for g := 0; g < nGPUs; g++ {
		row := dt.Row(g)
		for i := range row {
			jitter := 0.8 + 0.4*rng.float64()
			row[i] = work[i] * jitter / speed[g]
		}
	}
	return dt
}

// splitMix is a tiny deterministic RNG (splitmix64) used where we need
// seeded, allocation-light randomness without math/rand's lock or its
// global source. Identical output on every platform.
type splitMix struct{ s uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{s: seed} }

func (r *splitMix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform value in [0, 1).
func (r *splitMix) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// intn returns a uniform value in [0, n). n must be positive.
func (r *splitMix) intn(n int) int {
	return int(r.next() % uint64(n))
}

// sortTasksByKeyDesc sorts task ids by key descending, ties by id ascending
// — the deterministic LPT order shared by construction and tests. Uses
// slices.SortFunc: at 10⁶ ids the generic pdqsort is ~2x faster than
// sort.Slice's interface path, and this sort is the single largest fixed
// cost of list scheduling.
func sortTasksByKeyDesc(ids []int32, key []float64) {
	slices.SortFunc(ids, func(a, b int32) int {
		ka, kb := key[a], key[b]
		if ka > kb {
			return -1
		}
		if ka < kb {
			return 1
		}
		return int(a) - int(b)
	})
}
