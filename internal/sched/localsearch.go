package sched

import (
	"fmt"
	"math"
	"sync"
)

// Cluster-scale makespan search. The paper's case study 3 brute-forces 6
// tasks × 3 GPUs because prediction is fast; once the time table itself is
// cheap (DenseTimes filled by one PredictSweep pass per (network, GPU)),
// scheduling quality is bounded by search throughput. This file implements
// the search stack for 10⁶-task instances:
//
//   - listSchedule: LPT list scheduling with a bounded regret-lookahead
//     window as the construction heuristic;
//   - searchState: task-move and task-swap neighborhoods evaluated as O(1)
//     incremental load deltas against an indexed max-heap of GPU loads —
//     never a full finishAssignment rescan;
//   - anneal/descend: simulated annealing with a seeded deterministic RNG,
//     followed by strict-improvement descent;
//   - Schedule: goroutine-per-restart multi-start with a deterministic
//     best-of reduction (ties break toward the lowest restart index).
//
// Determinism contract: Schedule's result depends only on (dt, opt) —
// never on GOMAXPROCS, wall-clock time, or goroutine interleaving.

// SearchOptions tunes Schedule. The zero value selects scaled defaults.
type SearchOptions struct {
	// Restarts is the number of independent annealing restarts, each run
	// on its own goroutine with its own RNG stream. Default 4.
	Restarts int
	// Moves is the number of annealing proposals per restart. Default
	// max(50_000, 2·nTasks).
	Moves int
	// Seed is the base RNG seed; restart r derives an independent stream
	// from (Seed, r). The default 0 is a valid seed.
	Seed int64
	// Lookahead is the construction heuristic's regret window: how many
	// upcoming LPT-ordered tasks compete for the next placement. Default 8;
	// 1 is plain LPT.
	Lookahead int
	// DescentPasses bounds the strict-improvement sweeps after annealing.
	// Default: until convergence for small instances, 2 passes at scale.
	DescentPasses int
}

// withDefaults resolves the scaled defaults for an (n tasks, g GPUs)
// instance.
func (o SearchOptions) withDefaults(n int) SearchOptions {
	if o.Restarts <= 0 {
		o.Restarts = 4
		if n <= 64 {
			// Tiny instances are cheap and the most likely to sit one
			// basin away from the exact optimum — double the diversity.
			o.Restarts = 8
		}
	}
	if o.Moves <= 0 {
		o.Moves = 2 * n
		if o.Moves < 50_000 {
			o.Moves = 50_000
		}
	}
	if o.Lookahead <= 0 {
		o.Lookahead = 8
	}
	if o.DescentPasses <= 0 {
		if n <= smallInstanceTasks {
			o.DescentPasses = 256
		} else {
			o.DescentPasses = 2
		}
	}
	return o
}

// smallInstanceTasks bounds the O(n²) swap-sweep descent: below it, descent
// iterates move and pairwise-swap sweeps to a full local optimum (the
// regime where matching brute force exactly matters); above it, bounded
// move sweeps keep the pass linear.
const smallInstanceTasks = 512

// SearchResult is one Schedule run: the best assignment found, the
// certified lower bound with the measured optimality gap, and the search
// effort statistics mirrored into the internal/obs counters.
type SearchResult struct {
	// Dense is the best assignment across restarts, with exact
	// (from-scratch recomputed) loads and makespan.
	Dense *DenseAssignment
	// Makespan is Dense.Makespan, seconds.
	Makespan float64
	// LowerBound is a certified lower bound on the optimal makespan (see
	// LowerBound), and Gap = (Makespan-LowerBound)/LowerBound the measured
	// optimality gap.
	LowerBound float64
	Gap        float64
	// Search effort, summed across restarts.
	MovesTried, MovesAccepted int64
	SwapsTried, SwapsAccepted int64
	// Restarts is the restart count; BestRestart the index whose result
	// won the reduction.
	Restarts    int
	BestRestart int
}

// Schedule runs the full cluster-scale pipeline on a validated dense table:
// lower bound, LPT-lookahead construction, multi-start annealing + descent,
// deterministic reduction. It is the scalable counterpart of BruteForce and
// what Auto routes oversized instances to.
func Schedule(dt *DenseTimes, opt SearchOptions) (*SearchResult, error) {
	if dt == nil {
		return nil, errNilTable
	}
	if err := dt.Validate(); err != nil {
		return nil, err
	}
	n, g := dt.n, len(dt.gpus)
	opt = opt.withDefaults(n)

	timer := startSearchTimer()
	defer timer.Stop()
	metricSearches.Inc()
	metricSearchTasks.Add(int64(n))

	mins := taskMins(dt)
	lb := lowerBoundFromMins(dt, mins)
	initial := listSchedule(dt, mins, opt.Lookahead)

	res := &SearchResult{
		LowerBound: lb,
		Restarts:   opt.Restarts,
	}
	if g == 1 {
		// One GPU: every assignment is the same schedule.
		res.Dense, res.Makespan = initial, initial.Makespan
		res.Gap = gapOf(initial.Makespan, lb)
		recordSearchMetrics(res)
		return res, nil
	}

	t0, cool := annealSchedule(mins, n, opt.Moves)
	outs := make([]restartOut, opt.Restarts)
	var wg sync.WaitGroup
	for r := 0; r < opt.Restarts; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			outs[r] = runRestart(dt, initial.GPUOf, opt, r, t0, cool)
		}(r)
	}
	wg.Wait()

	// Deterministic best-of reduction: strict < keeps the lowest restart
	// index on ties, so the winner is independent of goroutine timing.
	best := 0
	for r := 1; r < opt.Restarts; r++ {
		if outs[r].makespan < outs[best].makespan {
			best = r
		}
	}
	final := &DenseAssignment{GPUOf: outs[best].gpuOf}
	finishDense(final, dt)
	res.Dense, res.Makespan, res.BestRestart = final, final.Makespan, best
	res.Gap = gapOf(final.Makespan, lb)
	for _, o := range outs {
		res.MovesTried += o.movesTried
		res.MovesAccepted += o.movesAccepted
		res.SwapsTried += o.swapsTried
		res.SwapsAccepted += o.swapsAccepted
	}
	recordSearchMetrics(res)
	return res, nil
}

// gapOf is the relative optimality gap, guarding a zero bound.
func gapOf(makespan, lb float64) float64 {
	if lb <= 0 {
		return 0
	}
	return (makespan - lb) / lb
}

// annealSchedule derives the temperature ladder from the instance: the
// typical move delta is one task's time, so the initial temperature tracks
// the mean best-GPU time and decays geometrically to 0.1% of the start over
// the move budget. Small instances heat to the LARGEST task instead — on a
// short queue reaching the optimum usually requires relocating the biggest
// task, and a mean-scaled temperature would freeze it in place.
func annealSchedule(mins *taskMinStats, n, moves int) (t0, cool float64) {
	t0 = 0.5 * mins.sumMin / float64(n)
	if n <= smallInstanceTasks {
		t0 = 0.5 * mins.maxMin
	}
	if t0 <= 0 {
		return 0, 1
	}
	cool = math.Pow(1e-3, 1/float64(moves))
	return t0, cool
}

// restartOut is one restart's contribution to the reduction.
type restartOut struct {
	gpuOf                     []int32
	makespan                  float64
	movesTried, movesAccepted int64
	swapsTried, swapsAccepted int64
}

// runRestart anneals and descends one restart and returns its best
// assignment with an exact makespan. Even restarts start from the shared
// LPT construction; on small instances odd restarts start from a seeded
// random assignment instead, so the multi-start explores genuinely
// different basins rather than four RNG streams in the same one. (At
// cluster scale a random start is hopeless and every restart keeps the
// construction.)
func runRestart(dt *DenseTimes, initial []int32, opt SearchOptions, r int, t0, cool float64) restartOut {
	if r%2 == 1 && dt.n <= smallInstanceTasks {
		rng := newSplitMix(restartSeed(opt.Seed, r) ^ 0x5bf03635aca2c2cb)
		alt := make([]int32, dt.n)
		for i := range alt {
			alt[i] = int32(rng.intn(len(dt.gpus)))
		}
		initial = alt
	}
	st := newSearchState(dt, initial, restartSeed(opt.Seed, r))
	st.anneal(opt.Moves, t0, cool)
	st.descend(opt.DescentPasses, st.n <= smallInstanceTasks)

	// The end state is a local optimum but the annealing phase may have
	// seen a better incumbent; recompute both exactly and keep the winner
	// (ties prefer the incumbent, which was reached first).
	load := make([]float64, st.g)
	endSpan := exactMakespan(dt, st.gpuOf, load)
	bestSpan := exactMakespan(dt, st.bestGPUOf, load)
	out := restartOut{
		movesTried: st.movesTried, movesAccepted: st.movesAccepted,
		swapsTried: st.swapsTried, swapsAccepted: st.swapsAccepted,
	}
	if endSpan < bestSpan {
		out.gpuOf, out.makespan = st.gpuOf, endSpan
	} else {
		out.gpuOf, out.makespan = st.bestGPUOf, bestSpan
	}
	return out
}

// restartSeed derives restart r's RNG seed from the base seed; the mixing
// constant keeps nearby (seed, r) pairs uncorrelated under splitmix.
func restartSeed(seed int64, r int) uint64 {
	return uint64(seed) ^ (uint64(r)+1)*0xa0761d6478bd642f
}

// exactMakespan recomputes an assignment's makespan from scratch into the
// caller's load buffer — the drift-free number every reported result uses.
func exactMakespan(dt *DenseTimes, gpuOf []int32, load []float64) float64 {
	for g := range load {
		load[g] = 0
	}
	n := dt.n
	for i, g := range gpuOf {
		load[g] += dt.t[int(g)*n+i]
	}
	span := 0.0
	for _, l := range load {
		if l > span {
			span = l
		}
	}
	return span
}

// ---------------------------------------------------------------- state

// searchState is one restart's mutable search position. Loads, the indexed
// max-heap over them, and the per-GPU task lists are all updated
// incrementally; nothing in the hot loop rescans the assignment.
type searchState struct {
	t    []float64 // dt.t, gpu-major
	n, g int

	gpuOf []int32   // task → GPU id
	load  []float64 // GPU → assigned seconds
	span  float64   // load[heapGPU[0]], the current makespan

	// Indexed binary max-heap over load: heapGPU[pos] is the GPU at heap
	// position pos, heapPos[g] its position. The root is the makespan GPU.
	heapGPU []int32
	heapPos []int32

	// Per-GPU task lists with O(1) membership moves: byGPU[g] lists the
	// tasks on g, slot[i] is task i's index within its list.
	byGPU [][]int32
	slot  []int32

	rng *splitMix

	// Incumbent: best makespan seen and the assignment that achieved it.
	bestSpan  float64
	bestGPUOf []int32

	movesTried, movesAccepted int64
	swapsTried, swapsAccepted int64
}

// newSearchState builds a restart state from an initial assignment.
func newSearchState(dt *DenseTimes, initial []int32, seed uint64) *searchState {
	n, g := dt.n, len(dt.gpus)
	s := &searchState{
		t: dt.t, n: n, g: g,
		gpuOf:     append([]int32(nil), initial...),
		load:      make([]float64, g),
		heapGPU:   make([]int32, g),
		heapPos:   make([]int32, g),
		byGPU:     make([][]int32, g),
		slot:      make([]int32, n),
		rng:       newSplitMix(seed),
		bestGPUOf: make([]int32, n),
	}
	counts := make([]int32, g)
	for _, gp := range s.gpuOf {
		counts[gp]++
	}
	for gp := range s.byGPU {
		// Slack above the initial population absorbs churn without
		// reallocating; steady-state moves then never grow the lists.
		s.byGPU[gp] = make([]int32, 0, int(counts[gp])+n/(4*g)+16)
	}
	for i, gp := range s.gpuOf {
		s.load[gp] += s.t[int(gp)*n+i]
		s.byGPU[gp] = append(s.byGPU[gp], int32(i))
		s.slot[i] = int32(len(s.byGPU[gp]) - 1)
	}
	for gp := range s.heapGPU {
		s.heapGPU[gp] = int32(gp)
		s.heapPos[gp] = int32(gp)
	}
	for pos := g/2 - 1; pos >= 0; pos-- {
		s.siftDown(pos)
	}
	s.span = s.load[s.heapGPU[0]]
	s.bestSpan = s.span
	copy(s.bestGPUOf, s.gpuOf)
	return s
}

// noteBest records the current assignment if it beats the incumbent.
func (s *searchState) noteBest() {
	if s.span < s.bestSpan {
		s.bestSpan = s.span
		copy(s.bestGPUOf, s.gpuOf)
	}
}

// ---------------------------------------------------------------- heap

// heapSwap exchanges two heap positions, keeping the position index
// coherent.
//
//dnnperf:allocfree
func (s *searchState) heapSwap(a, b int) {
	ga, gb := s.heapGPU[a], s.heapGPU[b]
	s.heapGPU[a], s.heapGPU[b] = gb, ga
	s.heapPos[ga], s.heapPos[gb] = int32(b), int32(a)
}

// siftUp restores the max-heap property upward from pos.
//
//dnnperf:allocfree
func (s *searchState) siftUp(pos int) {
	for pos > 0 {
		parent := (pos - 1) / 2
		if s.load[s.heapGPU[pos]] <= s.load[s.heapGPU[parent]] {
			return
		}
		s.heapSwap(pos, parent)
		pos = parent
	}
}

// siftDown restores the max-heap property downward from pos.
//
//dnnperf:allocfree
func (s *searchState) siftDown(pos int) {
	for {
		kid := 2*pos + 1
		if kid >= s.g {
			return
		}
		if r := kid + 1; r < s.g && s.load[s.heapGPU[r]] > s.load[s.heapGPU[kid]] {
			kid = r
		}
		if s.load[s.heapGPU[kid]] <= s.load[s.heapGPU[pos]] {
			return
		}
		s.heapSwap(pos, kid)
		pos = kid
	}
}

// heapFix re-sifts GPU g after its load changed.
//
//dnnperf:allocfree
func (s *searchState) heapFix(g int32) {
	s.siftUp(int(s.heapPos[g]))
	s.siftDown(int(s.heapPos[g]))
}

// maxExcluding returns the maximum load over GPUs other than a and b, in
// O(1): the answer is one of the three largest loads, and in a binary
// max-heap every root-to-node path reaches depth 3 through positions 0..6,
// so any deeper GPU c with excluded-max load has an ancestor d ∉ {a, b} in
// positions 0..6 with load[d] ≥ load[c] — scanning those seven positions
// therefore always finds the excluded maximum.
//
//dnnperf:allocfree
func (s *searchState) maxExcluding(a, b int32) float64 {
	limit := s.g
	if limit > 7 {
		limit = 7
	}
	best := 0.0
	for pos := 0; pos < limit; pos++ {
		g := s.heapGPU[pos]
		if g == a || g == b {
			continue
		}
		if s.load[g] > best {
			best = s.load[g]
		}
	}
	return best
}

// ---------------------------------------------------------------- moves

// evalMove returns the exact makespan after moving task i to GPU `to`, as
// an O(1) incremental load delta: two load updates plus the heap-top scan.
//
//dnnperf:allocfree
func (s *searchState) evalMove(i int, to int32) float64 {
	from := s.gpuOf[i]
	n := s.n
	newFrom := s.load[from] - s.t[int(from)*n+i]
	newTo := s.load[to] + s.t[int(to)*n+i]
	span := s.maxExcluding(from, to)
	if newFrom > span {
		span = newFrom
	}
	if newTo > span {
		span = newTo
	}
	return span
}

// evalSwap returns the exact makespan after exchanging tasks i and j
// (which must sit on different GPUs), again as an O(1) incremental delta.
//
//dnnperf:allocfree
func (s *searchState) evalSwap(i, j int) float64 {
	a, b := s.gpuOf[i], s.gpuOf[j]
	n := s.n
	newA := s.load[a] - s.t[int(a)*n+i] + s.t[int(a)*n+j]
	newB := s.load[b] - s.t[int(b)*n+j] + s.t[int(b)*n+i]
	span := s.maxExcluding(a, b)
	if newA > span {
		span = newA
	}
	if newB > span {
		span = newB
	}
	return span
}

// applyMove commits a task move, updating loads, lists, heap and span with
// the same increments evalMove predicted.
func (s *searchState) applyMove(i int, to int32) {
	from := s.gpuOf[i]
	lst := s.byGPU[from]
	last := len(lst) - 1
	tail := lst[last]
	si := s.slot[i]
	lst[si] = tail
	s.slot[tail] = si
	s.byGPU[from] = lst[:last]
	s.byGPU[to] = append(s.byGPU[to], int32(i))
	s.slot[i] = int32(len(s.byGPU[to]) - 1)
	s.gpuOf[i] = to
	n := s.n
	s.load[from] -= s.t[int(from)*n+i]
	s.load[to] += s.t[int(to)*n+i]
	s.heapFix(from)
	s.heapFix(to)
	s.span = s.load[s.heapGPU[0]]
}

// applySwap commits a task exchange; the per-GPU lists swap entries in
// place, so unlike applyMove it never appends.
//
//dnnperf:allocfree
func (s *searchState) applySwap(i, j int) {
	a, b := s.gpuOf[i], s.gpuOf[j]
	s.byGPU[a][s.slot[i]] = int32(j)
	s.byGPU[b][s.slot[j]] = int32(i)
	s.slot[i], s.slot[j] = s.slot[j], s.slot[i]
	s.gpuOf[i], s.gpuOf[j] = b, a
	n := s.n
	s.load[a] += s.t[int(a)*n+j] - s.t[int(a)*n+i]
	s.load[b] += s.t[int(b)*n+i] - s.t[int(b)*n+j]
	s.heapFix(a)
	s.heapFix(b)
	s.span = s.load[s.heapGPU[0]]
}

// ---------------------------------------------------------------- search

// anneal runs the simulated-annealing phase: proposals are biased toward
// the bottleneck (3 of 4 source picks take the max-load GPU off the heap
// root), kinds alternate between move and swap by coin flip, and worse
// states are accepted with probability exp(-delta/T) under a geometric
// cooling ladder.
func (s *searchState) anneal(moves int, t0, cool float64) {
	temp := t0
	for k := 0; k < moves; k++ {
		temp *= cool
		var src int32
		if s.rng.next()&3 != 0 {
			src = s.heapGPU[0]
		} else {
			src = int32(s.rng.intn(s.g))
		}
		lst := s.byGPU[src]
		if len(lst) == 0 {
			continue
		}
		i := int(lst[s.rng.intn(len(lst))])
		to := int32(s.rng.intn(s.g - 1))
		if to >= src {
			to++
		}
		if s.rng.next()&1 == 0 {
			s.movesTried++
			if s.accept(s.evalMove(i, to), temp) {
				s.applyMove(i, to)
				s.movesAccepted++
				s.noteBest()
			}
		} else {
			dst := s.byGPU[to]
			if len(dst) == 0 {
				continue
			}
			j := int(dst[s.rng.intn(len(dst))])
			s.swapsTried++
			if s.accept(s.evalSwap(i, j), temp) {
				s.applySwap(i, j)
				s.swapsAccepted++
				s.noteBest()
			}
		}
	}
}

// accept implements the annealing acceptance rule.
func (s *searchState) accept(newSpan, temp float64) bool {
	delta := newSpan - s.span
	if delta <= 0 {
		return true
	}
	if temp <= 0 {
		return false
	}
	x := delta / temp
	if x > 30 { // exp(-30) ≈ 1e-13: below any rng.float64 resolution worth paying math.Exp for
		return false
	}
	return s.rng.float64() < math.Exp(-x)
}

// descend runs strict-improvement sweeps until a local optimum or the pass
// bound: every task tries its best move; small instances additionally try
// every cross-GPU pair swap, which is what lets multi-start search land on
// the brute-force optimum for case-study-sized queues.
func (s *searchState) descend(maxPasses int, swapSweep bool) {
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for i := 0; i < s.n; i++ {
			from := s.gpuOf[i]
			bestTo := int32(-1)
			bestSpan := s.span
			for g := int32(0); g < int32(s.g); g++ {
				if g == from {
					continue
				}
				s.movesTried++
				if sp := s.evalMove(i, g); sp < bestSpan {
					bestSpan, bestTo = sp, g
				}
			}
			if bestTo >= 0 {
				s.applyMove(i, bestTo)
				s.movesAccepted++
				improved = true
				s.noteBest()
			}
		}
		if swapSweep {
			for i := 0; i < s.n; i++ {
				for j := i + 1; j < s.n; j++ {
					if s.gpuOf[i] == s.gpuOf[j] {
						continue
					}
					s.swapsTried++
					if sp := s.evalSwap(i, j); sp < s.span {
						s.applySwap(i, j)
						s.swapsAccepted++
						improved = true
						s.noteBest()
					}
				}
			}
		}
		if !improved {
			return
		}
	}
}

// ---------------------------------------------------------------- construction

// ListSchedule is LPT list scheduling with a bounded regret-lookahead
// window: tasks are ordered by best-GPU time descending, and at each step
// the window task with the largest regret — the completion-time penalty of
// not receiving its best GPU now — is placed on its earliest-finishing GPU.
// lookahead 1 is plain LPT. The public entry validates; Schedule reuses the
// internal path with precomputed mins.
func ListSchedule(dt *DenseTimes, lookahead int) (*DenseAssignment, error) {
	if dt == nil {
		return nil, errNilTable
	}
	if err := dt.Validate(); err != nil {
		return nil, err
	}
	if lookahead <= 0 {
		lookahead = 1
	}
	return listSchedule(dt, taskMins(dt), lookahead), nil
}

func listSchedule(dt *DenseTimes, mins *taskMinStats, lookahead int) *DenseAssignment {
	n, g := dt.n, len(dt.gpus)
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sortTasksByKeyDesc(order, mins.min)

	if lookahead > n {
		lookahead = n
	}
	a := &DenseAssignment{GPUOf: make([]int32, n)}
	load := make([]float64, g)
	// win holds the next `lookahead` unplaced tasks in LPT order; removal
	// shifts in place so ties keep resolving toward the earlier task.
	win := make([]int32, 0, lookahead)
	next := 0
	for placed := 0; placed < n; placed++ {
		for len(win) < lookahead && next < n {
			win = append(win, order[next])
			next++
		}
		bestW, bestGPU, bestRegret := 0, 0, -1.0
		for w, task := range win {
			i := int(task)
			f1, f2, g1 := math.Inf(1), math.Inf(1), 0
			for gp := 0; gp < g; gp++ {
				f := load[gp] + dt.t[gp*n+i]
				if f < f1 {
					f2 = f1
					f1, g1 = f, gp
				} else if f < f2 {
					f2 = f
				}
			}
			regret := f2 - f1
			if g == 1 {
				regret = 0
			}
			if regret > bestRegret {
				bestW, bestGPU, bestRegret = w, g1, regret
			}
		}
		task := win[bestW]
		a.GPUOf[task] = int32(bestGPU)
		load[bestGPU] += dt.t[bestGPU*n+int(task)]
		win = append(win[:bestW], win[bestW+1:]...)
	}
	finishDense(a, dt)
	return a
}

// ---------------------------------------------------------------- mins

// taskMinStats caches each task's best and second-best GPU time — shared
// by the LPT order, the lower bound, and the annealing temperature ladder.
type taskMinStats struct {
	min, sec []float64 // best and second-best time per task
	arg      []int32   // best GPU per task
	sumMin   float64   // Σ min, summed in task order
	maxMin   float64   // max over tasks of min
}

// taskMins computes the per-task best/second-best statistics in one
// gpu-major pass over the table.
func taskMins(dt *DenseTimes) *taskMinStats {
	n, g := dt.n, len(dt.gpus)
	m := &taskMinStats{
		min: make([]float64, n),
		sec: make([]float64, n),
		arg: make([]int32, n),
	}
	for i := range m.min {
		m.min[i] = math.Inf(1)
		m.sec[i] = math.Inf(1)
	}
	for gp := 0; gp < g; gp++ {
		row := dt.Row(gp)
		for i, v := range row {
			if v < m.min[i] {
				m.sec[i] = m.min[i]
				m.min[i], m.arg[i] = v, int32(gp)
			} else if v < m.sec[i] {
				m.sec[i] = v
			}
		}
	}
	for _, v := range m.min {
		m.sumMin += v
		if v > m.maxMin {
			m.maxMin = v
		}
	}
	return m
}

// errNilTable guards the exported entry points against a nil table.
var errNilTable = fmt.Errorf("sched: nil DenseTimes table")
