package sched

import "math"

// Lower bounds for unrelated-machines makespan (R||Cmax). Every Schedule
// result carries one so the optimality gap is measured, not guessed.
//
// Three bounds, each subsuming none of the others:
//
//   lb1 (best-time):  max_i min_g t[g][i] — some GPU must run each task,
//       and no GPU runs it faster than its best.
//   lb2 (fractional packing / Lagrangian dual): the LP relaxation of
//       R||Cmax (min T s.t. Σ_g x_gi = 1, Σ_i t_gi·x_gi ≤ T, x ≥ 0) has
//       the dual  max Σ_i min_g λ_g·t_gi  over machine prices λ ≥ 0 with
//       Σ_g λ_g = 1 — so EVERY normalized price vector certifies a bound.
//       Uniform prices λ_g = 1/g give the textbook (Σ_i min_g t_gi)/g,
//       which is weak on heterogeneous fleets (it prices the fastest GPU
//       like the slowest); lagrangeBound sharpens λ by multiplicative
//       subgradient ascent, converging toward λ_g ∝ speed_g on
//       near-related fleets and closing most of the duality gap.
//   lb3 (exclusion bisection): the largest T proven infeasible by the
//       per-machine exclusion condition — if task i cannot run on GPU h
//       within T (t[h][i] > T), its cheapest placement elsewhere is
//       min_{g≠h} t[g][i], and all such tasks must fit on the remaining
//       g−1 machines:  Σ_{i: t[h][i] > T} min_{g≠h} t[g][i] ≤ (g−1)·T.
//       The condition is monotone in T (raising T only shrinks the
//       excluded set and grows the budget), so bisecting between the
//       largest known-infeasible and smallest not-refuted T converges.
//
// The naive "restrict each task to GPUs with t ≤ T" refinement collapses
// to lb2 — the eligible minimum equals the global minimum whenever the
// task is feasible at all — which is why lb3 works per excluded machine
// using second-best times instead.

// LowerBound returns a certified lower bound on the optimal makespan of
// the table: the max of the best-time, fractional-packing, and
// exclusion-bisection bounds.
func LowerBound(dt *DenseTimes) (float64, error) {
	if dt == nil {
		return 0, errNilTable
	}
	if err := dt.Validate(); err != nil {
		return 0, err
	}
	return lowerBoundFromMins(dt, taskMins(dt)), nil
}

// lowerBoundFromMins is the internal entry sharing the taskMins pass with
// construction and annealing.
func lowerBoundFromMins(dt *DenseTimes, mins *taskMinStats) float64 {
	g := len(dt.gpus)
	if g == 1 {
		return mins.sumMin
	}
	lb := mins.maxMin // lb1
	if frac := mins.sumMin / float64(g); frac > lb {
		lb = frac // lb2 at uniform prices
	}
	if lag := lagrangeBound(dt); lag > lb {
		lb = lag // lb2 at ascent-optimized prices
	}
	if exclusionFeasible(dt, mins, lb) {
		return lb
	}
	// lb is infeasible: bisect up to the first not-refuted makespan. The
	// optimum exceeds every infeasible T, so the final lo is still a valid
	// bound. Doubling is capped defensively; Validate guarantees finite
	// positive times, so feasibility is reached long before the cap.
	lo, hi := lb, 2*lb
	for range [64]struct{}{} {
		if exclusionFeasible(dt, mins, hi) {
			break
		}
		lo, hi = hi, 2*hi
	}
	for range [40]struct{}{} {
		mid := lo + (hi-lo)/2
		if mid <= lo || mid >= hi {
			break // float interval exhausted
		}
		if exclusionFeasible(dt, mins, mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return lo
}

// lagrangeBound maximizes the LP dual  Σ_i min_g λ_g·t_gi  over machine
// prices by multiplicative subgradient ascent: a machine whose λ-cheapest
// load is above fleet average is underpriced (raise λ_g), one attracting
// nothing is overpriced (lower it). Any iterate's value is already a valid
// bound — the ascent only decides how tight — so early stopping is safe.
// Cost is O(n·g) per iteration, capped so 10⁶×8 tables stay ~1s.
func lagrangeBound(dt *DenseTimes) float64 {
	n, g := dt.n, len(dt.gpus)
	if g == 1 {
		return 0 // the g==1 exact sum is handled by the caller
	}
	iters := 48
	if work := int64(n) * int64(g) * int64(iters); work > 4e8 {
		iters = int(4e8 / (int64(n) * int64(g)))
		if iters < 8 {
			iters = 8
		}
	}
	lam := make([]float64, g)
	for gg := range lam {
		lam[gg] = 1 / float64(g)
	}
	d := make([]float64, g)    // λ-cheapest load drawn to each machine
	minC := make([]float64, n) // per-task cheapest priced time
	argC := make([]int32, n)   // and the machine achieving it
	best, stale := 0.0, 0
	for it := 0; it < iters; it++ {
		for i := range minC {
			minC[i] = math.Inf(1)
		}
		for gg := 0; gg < g; gg++ {
			row := dt.t[gg*n : (gg+1)*n]
			l := lam[gg]
			for i, v := range row {
				if c := l * v; c < minC[i] {
					minC[i] = c
					argC[i] = int32(gg)
				}
			}
		}
		for gg := range d {
			d[gg] = 0
		}
		val := 0.0
		for i, c := range minC {
			val += c
			gg := argC[i]
			d[gg] += dt.t[int(gg)*n+i]
		}
		if val > best*(1+1e-9) {
			best, stale = val, 0
		} else if stale++; stale >= 6 {
			break // converged: six iterations without improvement
		}
		// Multiplicative update toward balanced λ-cheapest loads, with a
		// decaying step and a clamped exponent so one iteration can never
		// blow a price up or collapse it to zero.
		avg := 0.0
		for _, v := range d {
			avg += v
		}
		avg /= float64(g)
		if avg <= 0 {
			break
		}
		// Small constant-ish step: empirically η=0.1 converges in ~6
		// iterations on 8-GPU fleets where η=0.5 oscillates for 40.
		eta := 0.1 / (1 + float64(it)/16)
		sum := 0.0
		for gg := range lam {
			grad := d[gg]/avg - 1
			if grad > 3 {
				grad = 3
			} else if grad < -1 {
				grad = -1
			}
			lam[gg] *= math.Exp(eta * grad)
			sum += lam[gg]
		}
		for gg := range lam {
			lam[gg] /= sum
		}
	}
	return best
}

// exclusionFeasible reports whether makespan T survives the per-machine
// exclusion condition: for every GPU h, the tasks T forces off h must fit
// within the other machines' combined budget. One O(g·n) pass per call,
// using the cached best/second-best times (min elsewhere is sec when h is
// the argmin GPU, min otherwise).
func exclusionFeasible(dt *DenseTimes, mins *taskMinStats, T float64) bool {
	n, g := dt.n, len(dt.gpus)
	budget := float64(g-1) * T
	for h := 0; h < g; h++ {
		row := dt.t[h*n : (h+1)*n]
		excluded := 0.0
		for i, v := range row {
			if v <= T {
				continue
			}
			elsewhere := mins.min[i]
			if mins.arg[i] == int32(h) {
				elsewhere = mins.sec[i]
			}
			if elsewhere > T {
				return false // task i fits nowhere within T
			}
			excluded += elsewhere
			if excluded > budget {
				return false
			}
		}
	}
	return true
}
