package sched

import (
	"repro/internal/obs"
)

// Observability handles for the scheduler, registered once at package init.
// Recording is gated by obs.Enabled() through obs.StartTimer, so disabled
// collection costs one atomic load per search.
var (
	metricSearchSeconds = obs.Default().Histogram("sched_search_seconds",
		"Latency of one Schedule run (construction + multi-start search).", nil)
	metricSearches = obs.Default().Counter("sched_searches_total",
		"Schedule runs completed.")
	metricSearchTasks = obs.Default().Counter("sched_search_tasks_total",
		"Tasks scheduled across all Schedule runs.")
	metricMovesTried = obs.Default().Counter("sched_moves_tried_total",
		"Task-move proposals evaluated across annealing and descent.")
	metricMovesAccepted = obs.Default().Counter("sched_moves_accepted_total",
		"Task-move proposals accepted.")
	metricSwapsTried = obs.Default().Counter("sched_swaps_tried_total",
		"Task-swap proposals evaluated across annealing and descent.")
	metricSwapsAccepted = obs.Default().Counter("sched_swaps_accepted_total",
		"Task-swap proposals accepted.")
	metricLastGapPPM = obs.Default().Gauge("sched_last_gap_ppm",
		"Optimality gap of the most recent Schedule run, parts per million.")
)

// startSearchTimer scopes the search-latency histogram sample.
func startSearchTimer() obs.Timer {
	return obs.StartTimer(metricSearchSeconds)
}

// recordSearchMetrics mirrors one result's effort counters into obs.
func recordSearchMetrics(res *SearchResult) {
	metricMovesTried.Add(res.MovesTried)
	metricMovesAccepted.Add(res.MovesAccepted)
	metricSwapsTried.Add(res.SwapsTried)
	metricSwapsAccepted.Add(res.SwapsAccepted)
	metricLastGapPPM.Set(int64(res.Gap * 1e6))
}
