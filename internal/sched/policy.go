package sched

import "fmt"

// Policy is the pluggable scheduler-policy substrate: a named strategy
// turning a dense time table into an assignment. Fleet-level consumers
// (the planned fleetsim) select policies by configuration and compare them
// on equal tables; everything here is deterministic for a fixed policy
// value and table.
type Policy interface {
	// Name identifies the policy in reports and JSON summaries.
	Name() string
	// Schedule assigns every task in the table to a GPU.
	Schedule(dt *DenseTimes) (*DenseAssignment, error)
}

// ListPolicy is construction-only scheduling: LPT with a bounded regret
// lookahead (see ListSchedule). The zero value is plain LPT.
type ListPolicy struct {
	// Lookahead is the regret window; ≤ 0 means 1 (plain LPT).
	Lookahead int
}

// Name implements Policy.
func (p ListPolicy) Name() string {
	if p.Lookahead > 1 {
		return fmt.Sprintf("list-lpt-w%d", p.Lookahead)
	}
	return "list-lpt"
}

// Schedule implements Policy.
func (p ListPolicy) Schedule(dt *DenseTimes) (*DenseAssignment, error) {
	return ListSchedule(dt, p.Lookahead)
}

// SearchPolicy is the full multi-start local-search pipeline (see
// Schedule). The zero value uses the scaled default options.
type SearchPolicy struct {
	Options SearchOptions
}

// Name implements Policy.
func (p SearchPolicy) Name() string { return "local-search" }

// Schedule implements Policy.
func (p SearchPolicy) Schedule(dt *DenseTimes) (*DenseAssignment, error) {
	res, err := Schedule(dt, p.Options)
	if err != nil {
		return nil, err
	}
	return res.Dense, nil
}
