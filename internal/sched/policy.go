package sched

import "fmt"

// Policy is the pluggable scheduler-policy substrate: a named strategy
// turning a dense time table into an assignment. Fleet-level consumers
// (the planned fleetsim) select policies by configuration and compare them
// on equal tables; everything here is deterministic for a fixed policy
// value and table.
type Policy interface {
	// Name identifies the policy in reports and JSON summaries.
	Name() string
	// Schedule assigns every task in the table to a GPU.
	Schedule(dt *DenseTimes) (*DenseAssignment, error)
}

// ListPolicy is construction-only scheduling: LPT with a bounded regret
// lookahead (see ListSchedule). The zero value is plain LPT.
type ListPolicy struct {
	// Lookahead is the regret window; ≤ 0 means 1 (plain LPT).
	Lookahead int
}

// Name implements Policy.
func (p ListPolicy) Name() string {
	if p.Lookahead > 1 {
		return fmt.Sprintf("list-lpt-w%d", p.Lookahead)
	}
	return "list-lpt"
}

// Schedule implements Policy.
func (p ListPolicy) Schedule(dt *DenseTimes) (*DenseAssignment, error) {
	return ListSchedule(dt, p.Lookahead)
}

// InOrderPolicy is dense list scheduling in input order: each task in turn
// goes to the GPU minimizing its completion time, no LPT sort. It models a
// dispatcher that must place requests as they arrive, and is the baseline
// the fleetsim policy-seam tests separate from ListPolicy by construction
// (worst case 2 − 1/g on identical machines).
type InOrderPolicy struct{}

// Name implements Policy.
func (InOrderPolicy) Name() string { return "greedy-inorder" }

// Schedule implements Policy.
func (InOrderPolicy) Schedule(dt *DenseTimes) (*DenseAssignment, error) {
	if err := dt.Validate(); err != nil {
		return nil, err
	}
	a := &DenseAssignment{
		GPUOf: make([]int32, dt.NumTasks()),
		Load:  make([]float64, dt.NumGPUs()),
	}
	for i := 0; i < dt.n; i++ {
		best, bestFinish := 0, a.Load[0]+dt.At(0, i)
		for g := 1; g < len(dt.gpus); g++ {
			if f := a.Load[g] + dt.At(g, i); f < bestFinish {
				best, bestFinish = g, f
			}
		}
		a.GPUOf[i] = int32(best)
		a.Load[best] = bestFinish
		if bestFinish > a.Makespan {
			a.Makespan = bestFinish
		}
	}
	return a, nil
}

// SearchPolicy is the full multi-start local-search pipeline (see
// Schedule). The zero value uses the scaled default options.
type SearchPolicy struct {
	Options SearchOptions
}

// Name implements Policy.
func (p SearchPolicy) Name() string { return "local-search" }

// Schedule implements Policy.
func (p SearchPolicy) Schedule(dt *DenseTimes) (*DenseAssignment, error) {
	res, err := Schedule(dt, p.Options)
	if err != nil {
		return nil, err
	}
	return res.Dense, nil
}
