//go:build !race

package sched

// raceEnabled reports whether the race detector instruments this build;
// wall-clock acceptance budgets only apply to uninstrumented binaries.
const raceEnabled = false
