// Package sched implements case study 3 (§6): using the performance models
// to make real-time scheduling decisions across heterogeneous GPUs — both
// per-network GPU selection (Figure 18) and whole-queue makespan-minimizing
// assignment (Figure 19), where the models' speed makes brute-force search
// practical.
package sched

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Task is one network inference job in the queue.
type Task struct {
	// Name identifies the network.
	Name string
	// Batch is the inference batch size.
	Batch int
}

// Times holds per-GPU execution time estimates (or measurements) for a task
// list: Times[gpuName][i] is task i's time on that GPU, in seconds.
type Times map[string][]float64

// Validate checks that every GPU has one time per task and all are positive.
func (tm Times) Validate(nTasks int) error {
	if len(tm) == 0 {
		return fmt.Errorf("sched: no GPUs")
	}
	for g, ts := range tm {
		if len(ts) != nTasks {
			return fmt.Errorf("sched: GPU %q has %d times for %d tasks", g, len(ts), nTasks)
		}
		for i, t := range ts {
			if t <= 0 || math.IsNaN(t) || math.IsInf(t, 0) {
				return fmt.Errorf("sched: GPU %q task %d has non-positive time %v", g, i, t)
			}
		}
	}
	return nil
}

// gpuNames returns the map keys sorted, for deterministic iteration.
func (tm Times) gpuNames() []string {
	out := make([]string, 0, len(tm))
	for g := range tm {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// ChooseGPU returns, for each task, the GPU with the smallest time — the
// per-network decision of Figure 18 ("which GPU runs the network faster").
func ChooseGPU(tm Times, nTasks int) ([]string, error) {
	if err := tm.Validate(nTasks); err != nil {
		return nil, err
	}
	gpus := tm.gpuNames()
	out := make([]string, nTasks)
	for i := 0; i < nTasks; i++ {
		best := gpus[0]
		for _, g := range gpus[1:] {
			if tm[g][i] < tm[best][i] {
				best = g
			}
		}
		out[i] = best
	}
	return out, nil
}

// Assignment maps each task index to a GPU and reports the resulting
// per-GPU loads and makespan.
type Assignment struct {
	// GPUOf[i] is the GPU task i runs on.
	GPUOf []string
	// Load is each GPU's total assigned time, seconds.
	Load map[string]float64
	// Makespan is the maximum load — the overall completion time.
	Makespan float64
}

// recomputes loads/makespan from GPUOf and the time table.
func finishAssignment(a *Assignment, tm Times) {
	a.Load = map[string]float64{}
	for g := range tm {
		a.Load[g] = 0
	}
	for i, g := range a.GPUOf {
		a.Load[g] += tm[g][i]
	}
	a.Makespan = 0
	for _, l := range a.Load {
		if l > a.Makespan {
			a.Makespan = l
		}
	}
}

// maxBruteForceTasks bounds the exhaustive search (g^n assignments).
const maxBruteForceTasks = 16

// ErrSearchSpace marks a scheduling request whose exhaustive search space is
// too large to enumerate (g^n assignments blow up exponentially). Callers
// detect it with errors.Is and fall back to Greedy — or call Auto, which
// does exactly that.
var ErrSearchSpace = errors.New("sched: search space too large for brute force")

// BruteForce enumerates every assignment of tasks to GPUs and returns one
// with minimal makespan ("thanks to the extremely fast execution, we can
// easily run a brute force design space search", §6). It requires
// len(tasks) ≤ 16 and at most 4 GPUs; beyond either limit it returns an
// error wrapping ErrSearchSpace. Use Greedy (or Auto) beyond the limits.
func BruteForce(tm Times, nTasks int) (Assignment, error) {
	if err := tm.Validate(nTasks); err != nil {
		return Assignment{}, err
	}
	gpus := tm.gpuNames()
	if nTasks > maxBruteForceTasks {
		return Assignment{}, fmt.Errorf("%w: limited to %d tasks, got %d", ErrSearchSpace, maxBruteForceTasks, nTasks)
	}
	if len(gpus) > 4 {
		return Assignment{}, fmt.Errorf("%w: limited to 4 GPUs, got %d", ErrSearchSpace, len(gpus))
	}

	g := len(gpus)
	total := 1
	for i := 0; i < nTasks; i++ {
		total *= g
	}
	best := Assignment{Makespan: math.Inf(1)}
	choice := make([]int, nTasks)
	loads := make([]float64, g)
	for code := 0; code < total; code++ {
		c := code
		for i := range loads {
			loads[i] = 0
		}
		for i := 0; i < nTasks; i++ {
			choice[i] = c % g
			c /= g
			loads[choice[i]] += tm[gpus[choice[i]]][i]
		}
		span := 0.0
		for _, l := range loads {
			if l > span {
				span = l
			}
		}
		if span < best.Makespan {
			best.Makespan = span
			best.GPUOf = make([]string, nTasks)
			for i, ci := range choice {
				best.GPUOf[i] = gpus[ci]
			}
		}
	}
	finishAssignment(&best, tm)
	return best, nil
}

// Auto schedules with BruteForce when the search space permits and falls
// back to Greedy when BruteForce reports ErrSearchSpace. The returned flag
// is true when the assignment is the exact optimum (brute force ran);
// validation errors are returned as-is, never masked by the fallback.
func Auto(tm Times, nTasks int) (Assignment, bool, error) {
	a, err := BruteForce(tm, nTasks)
	if err == nil {
		return a, true, nil
	}
	if !errors.Is(err, ErrSearchSpace) {
		return Assignment{}, false, err
	}
	a, err = Greedy(tm, nTasks)
	return a, false, err
}

// Greedy is the longest-processing-time heuristic: tasks sorted by their
// best-GPU time descending, each placed on the GPU minimizing the resulting
// completion time. Provided as the scalable baseline the experiments compare
// against brute force.
func Greedy(tm Times, nTasks int) (Assignment, error) {
	if err := tm.Validate(nTasks); err != nil {
		return Assignment{}, err
	}
	gpus := tm.gpuNames()
	order := make([]int, nTasks)
	for i := range order {
		order[i] = i
	}
	key := func(i int) float64 {
		best := math.Inf(1)
		for _, g := range gpus {
			if tm[g][i] < best {
				best = tm[g][i]
			}
		}
		return best
	}
	sort.Slice(order, func(a, b int) bool { return key(order[a]) > key(order[b]) })

	a := Assignment{GPUOf: make([]string, nTasks)}
	load := map[string]float64{}
	for _, i := range order {
		bestG, bestFinish := "", math.Inf(1)
		for _, g := range gpus {
			if f := load[g] + tm[g][i]; f < bestFinish {
				bestFinish = f
				bestG = g
			}
		}
		a.GPUOf[i] = bestG
		load[bestG] += tm[bestG][i]
	}
	finishAssignment(&a, tm)
	return a, nil
}

// MakespanOf evaluates an existing assignment under a different time table —
// e.g. a predicted-time assignment re-costed with measured times, the
// comparison behind Figure 19's "identical to the oracle" claim.
func MakespanOf(gpuOf []string, tm Times) (float64, error) {
	if err := tm.Validate(len(gpuOf)); err != nil {
		return 0, err
	}
	load := map[string]float64{}
	for i, g := range gpuOf {
		ts, ok := tm[g]
		if !ok {
			return 0, fmt.Errorf("sched: assignment references unknown GPU %q", g)
		}
		load[g] += ts[i]
	}
	span := 0.0
	for _, l := range load {
		if l > span {
			span = l
		}
	}
	return span, nil
}
