// Package sched implements case study 3 (§6): using the performance models
// to make real-time scheduling decisions across heterogeneous GPUs — both
// per-network GPU selection (Figure 18) and whole-queue makespan-minimizing
// assignment (Figure 19), where the models' speed makes brute-force search
// practical.
//
// Beyond the paper's 6-task scale, the package is a cluster-scale makespan
// optimizer: DenseTimes holds the time table flat and gpu-major, Schedule
// runs LPT-lookahead construction plus multi-start annealed local search
// with O(1) incremental move evaluation, and LowerBound certifies the
// optimality gap. Auto routes between the two regimes by instance size.
package sched

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Task is one network inference job in the queue.
type Task struct {
	// Name identifies the network.
	Name string
	// Batch is the inference batch size.
	Batch int
}

// Times holds per-GPU execution time estimates (or measurements) for a task
// list: Times[gpuName][i] is task i's time on that GPU, in seconds.
type Times map[string][]float64

// Validate checks that every GPU has one time per task and all are positive.
func (tm Times) Validate(nTasks int) error {
	if len(tm) == 0 {
		return fmt.Errorf("sched: no GPUs")
	}
	for g, ts := range tm {
		if len(ts) != nTasks {
			return fmt.Errorf("sched: GPU %q has %d times for %d tasks", g, len(ts), nTasks)
		}
		for i, t := range ts {
			if t <= 0 || math.IsNaN(t) || math.IsInf(t, 0) {
				return fmt.Errorf("sched: GPU %q task %d has non-positive time %v", g, i, t)
			}
		}
	}
	return nil
}

// gpuNames returns the map keys sorted, for deterministic iteration.
func (tm Times) gpuNames() []string { return tm.gpuNamesInto(nil) }

// gpuNamesInto is the buffer-reusing variant of gpuNames: the sorted keys
// are appended into buf[:0], so a caller holding the returned slice across
// calls sorts into cached storage instead of re-allocating each time.
func (tm Times) gpuNamesInto(buf []string) []string {
	buf = buf[:0]
	for g := range tm {
		buf = append(buf, g)
	}
	sort.Strings(buf)
	return buf
}

// ChooseGPU returns, for each task, the GPU with the smallest time — the
// per-network decision of Figure 18 ("which GPU runs the network faster").
func ChooseGPU(tm Times, nTasks int) ([]string, error) {
	if err := tm.Validate(nTasks); err != nil {
		return nil, err
	}
	gpus := tm.gpuNames()
	out := make([]string, nTasks)
	for i := 0; i < nTasks; i++ {
		best := gpus[0]
		for _, g := range gpus[1:] {
			if tm[g][i] < tm[best][i] {
				best = g
			}
		}
		out[i] = best
	}
	return out, nil
}

// Assignment maps each task index to a GPU and reports the resulting
// per-GPU loads and makespan.
type Assignment struct {
	// GPUOf[i] is the GPU task i runs on.
	GPUOf []string
	// Load is each GPU's total assigned time, seconds.
	Load map[string]float64
	// Makespan is the maximum load — the overall completion time.
	Makespan float64
}

// finishAssignment recomputes loads/makespan from GPUOf and the time table,
// allocating a fresh load map; hot loops use finishAssignmentInto instead.
func finishAssignment(a *Assignment, tm Times) {
	finishAssignmentInto(a, tm, make(map[string]float64, len(tm)))
}

// finishAssignmentInto is the buffer-reusing variant: the caller's load map
// is cleared, refilled, and installed as a.Load. When the map already holds
// this table's GPU keys the recompute performs zero allocations, which is
// what lets per-call schedulers amortize the map across a whole queue.
func finishAssignmentInto(a *Assignment, tm Times, load map[string]float64) {
	clear(load)
	for g := range tm {
		load[g] = 0
	}
	for i, g := range a.GPUOf {
		load[g] += tm[g][i]
	}
	a.Load = load
	a.Makespan = 0
	for _, l := range a.Load {
		if l > a.Makespan {
			a.Makespan = l
		}
	}
}

// maxBruteForceTasks bounds the exhaustive search (g^n assignments).
const maxBruteForceTasks = 16

// ErrSearchSpace marks a scheduling request whose exhaustive search space is
// too large to enumerate (g^n assignments blow up exponentially). Callers
// detect it with errors.Is and fall back to Greedy — or call Auto, which
// does exactly that.
var ErrSearchSpace = errors.New("sched: search space too large for brute force")

// BruteForce enumerates every assignment of tasks to GPUs and returns one
// with minimal makespan ("thanks to the extremely fast execution, we can
// easily run a brute force design space search", §6). It requires
// len(tasks) ≤ 16 and at most 4 GPUs; beyond either limit it returns an
// error wrapping ErrSearchSpace. Use Greedy (or Auto) beyond the limits.
func BruteForce(tm Times, nTasks int) (Assignment, error) {
	if err := tm.Validate(nTasks); err != nil {
		return Assignment{}, err
	}
	gpus := tm.gpuNames()
	if nTasks > maxBruteForceTasks {
		return Assignment{}, fmt.Errorf("%w: limited to %d tasks, got %d", ErrSearchSpace, maxBruteForceTasks, nTasks)
	}
	if len(gpus) > 4 {
		return Assignment{}, fmt.Errorf("%w: limited to 4 GPUs, got %d", ErrSearchSpace, len(gpus))
	}

	g := len(gpus)
	total := 1
	for i := 0; i < nTasks; i++ {
		total *= g
	}
	best := Assignment{Makespan: math.Inf(1)}
	choice := make([]int, nTasks)
	loads := make([]float64, g)
	for code := 0; code < total; code++ {
		c := code
		for i := range loads {
			loads[i] = 0
		}
		for i := 0; i < nTasks; i++ {
			choice[i] = c % g
			c /= g
			loads[choice[i]] += tm[gpus[choice[i]]][i]
		}
		span := 0.0
		for _, l := range loads {
			if l > span {
				span = l
			}
		}
		if span < best.Makespan {
			best.Makespan = span
			best.GPUOf = make([]string, nTasks)
			for i, ci := range choice {
				best.GPUOf[i] = gpus[ci]
			}
		}
	}
	finishAssignment(&best, tm)
	return best, nil
}

// Auto schedules with BruteForce when the search space permits; when
// BruteForce reports ErrSearchSpace it routes to the cluster-scale path —
// dense conversion, LPT-lookahead construction, and multi-start local
// search via Schedule with default options. The returned flag is true when
// the assignment is the exact optimum (brute force ran); validation errors
// are returned as-is, never masked by the fallback.
func Auto(tm Times, nTasks int) (Assignment, bool, error) {
	a, err := BruteForce(tm, nTasks)
	if err == nil {
		return a, true, nil
	}
	if !errors.Is(err, ErrSearchSpace) {
		return Assignment{}, false, err
	}
	dt, err := FromTimes(tm, nTasks)
	if err != nil {
		return Assignment{}, false, err
	}
	res, err := Schedule(dt, SearchOptions{})
	if err != nil {
		return Assignment{}, false, err
	}
	return res.Dense.Assignment(dt), false, nil
}

// Greedy is the longest-processing-time (LPT) heuristic: tasks sorted by
// their best-GPU time descending, each placed on the GPU minimizing the
// resulting completion time. Sorting longest-first is what buys the
// classical approximation guarantee — on identical machines LPT is within
// 4/3 − 1/(3g) of optimal (Graham 1969), versus 2 − 1/g for arbitrary-order
// list scheduling — and heterogeneous fleets inherit it as a strong
// baseline. GreedyInOrder keeps the unsorted variant for comparison.
func Greedy(tm Times, nTasks int) (Assignment, error) {
	if err := tm.Validate(nTasks); err != nil {
		return Assignment{}, err
	}
	gpus := tm.gpuNames()
	// Precompute each task's best-GPU time once: sorting with a comparator
	// that rescans every GPU per comparison would cost O(n log n · g)
	// redundant table reads.
	keys := make([]float64, nTasks)
	order := make([]int32, nTasks)
	for i := range order {
		order[i] = int32(i)
		best := math.Inf(1)
		for _, g := range gpus {
			if tm[g][i] < best {
				best = tm[g][i]
			}
		}
		keys[i] = best
	}
	sortTasksByKeyDesc(order, keys)

	a := Assignment{GPUOf: make([]string, nTasks)}
	load := make(map[string]float64, len(gpus))
	for _, task := range order {
		i := int(task)
		bestG, bestFinish := "", math.Inf(1)
		for _, g := range gpus {
			if f := load[g] + tm[g][i]; f < bestFinish {
				bestFinish = f
				bestG = g
			}
		}
		a.GPUOf[i] = bestG
		load[bestG] += tm[bestG][i]
	}
	finishAssignmentInto(&a, tm, load)
	return a, nil
}

// GreedyInOrder is list scheduling in input order: each task in turn goes
// to the GPU minimizing its completion time, with no LPT sort. This is the
// order-sensitive variant (worst case 2 − 1/g on identical machines) kept
// for golden comparisons and for queues whose arrival order is meaningful.
func GreedyInOrder(tm Times, nTasks int) (Assignment, error) {
	if err := tm.Validate(nTasks); err != nil {
		return Assignment{}, err
	}
	gpus := tm.gpuNames()
	a := Assignment{GPUOf: make([]string, nTasks)}
	load := make(map[string]float64, len(gpus))
	for i := 0; i < nTasks; i++ {
		bestG, bestFinish := "", math.Inf(1)
		for _, g := range gpus {
			if f := load[g] + tm[g][i]; f < bestFinish {
				bestFinish = f
				bestG = g
			}
		}
		a.GPUOf[i] = bestG
		load[bestG] += tm[bestG][i]
	}
	finishAssignmentInto(&a, tm, load)
	return a, nil
}

// MakespanOf evaluates an existing assignment under a different time table —
// e.g. a predicted-time assignment re-costed with measured times, the
// comparison behind Figure 19's "identical to the oracle" claim.
func MakespanOf(gpuOf []string, tm Times) (float64, error) {
	if err := tm.Validate(len(gpuOf)); err != nil {
		return 0, err
	}
	load := map[string]float64{}
	for i, g := range gpuOf {
		ts, ok := tm[g]
		if !ok {
			return 0, fmt.Errorf("sched: assignment references unknown GPU %q", g)
		}
		load[g] += ts[i]
	}
	span := 0.0
	for _, l := range load {
		if l > span {
			span = l
		}
	}
	return span, nil
}
