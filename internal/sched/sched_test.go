package sched

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func twoGPUTimes() Times {
	return Times{
		"fast": {1, 2, 3, 4},
		"slow": {2, 4, 6, 8},
	}
}

func TestChooseGPU(t *testing.T) {
	tm := Times{
		"a": {1, 5, 3},
		"b": {2, 4, 3},
	}
	got, err := ChooseGPU(tm, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "a"} // ties go to the lexicographically first
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ChooseGPU = %v, want %v", got, want)
		}
	}
}

func TestBruteForceBeatsSingleGPU(t *testing.T) {
	tm := twoGPUTimes()
	a, err := BruteForce(tm, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Everything on "fast" costs 10; splitting must do better.
	if a.Makespan >= 10 {
		t.Fatalf("brute force makespan %v not better than single GPU", a.Makespan)
	}
	// Known optimum: fast {3,4}=7 or {1,2,4}=7, slow covers the rest.
	if a.Makespan != 7 {
		t.Fatalf("makespan = %v, want 7", a.Makespan)
	}
	// Loads must be consistent with the assignment.
	var check float64
	for _, l := range a.Load {
		if l > check {
			check = l
		}
	}
	if check != a.Makespan {
		t.Fatalf("makespan %v != max load %v", a.Makespan, check)
	}
}

func TestBruteForceSingleTask(t *testing.T) {
	tm := Times{"a": {5}, "b": {3}}
	a, err := BruteForce(tm, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.GPUOf[0] != "b" || a.Makespan != 3 {
		t.Fatalf("assignment = %+v", a)
	}
}

func TestBruteForceLimits(t *testing.T) {
	tm := Times{"a": make([]float64, 20), "b": make([]float64, 20)}
	for i := range tm["a"] {
		tm["a"][i], tm["b"][i] = 1, 1
	}
	if _, err := BruteForce(tm, 20); err == nil {
		t.Fatal("20 tasks should exceed the brute-force limit")
	}
}

func TestBruteForceSearchSpaceError(t *testing.T) {
	// 20 tasks on 2 GPUs: over the task limit.
	tm := Times{"a": make([]float64, 20), "b": make([]float64, 20)}
	for i := range tm["a"] {
		tm["a"][i], tm["b"][i] = 1, 2
	}
	_, err := BruteForce(tm, 20)
	if !errors.Is(err, ErrSearchSpace) {
		t.Fatalf("20-task error = %v, want ErrSearchSpace", err)
	}

	// 5 GPUs: over the GPU limit.
	wide := Times{}
	for _, g := range []string{"a", "b", "c", "d", "e"} {
		wide[g] = []float64{1, 2}
	}
	_, err = BruteForce(wide, 2)
	if !errors.Is(err, ErrSearchSpace) {
		t.Fatalf("5-GPU error = %v, want ErrSearchSpace", err)
	}

	// A validation error must NOT be ErrSearchSpace.
	_, err = BruteForce(Times{}, 3)
	if err == nil || errors.Is(err, ErrSearchSpace) {
		t.Fatalf("validation error = %v, want a non-search-space error", err)
	}
}

func TestAutoFallsBackToGreedy(t *testing.T) {
	// In-limit case: Auto must return the brute-force optimum and exact=true.
	small := Times{"a": {1, 5}, "b": {5, 1}}
	a, exact, err := Auto(small, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !exact {
		t.Fatal("2 tasks on 2 GPUs should be solved exactly")
	}
	if a.Makespan != 1 {
		t.Fatalf("optimal makespan = %v, want 1", a.Makespan)
	}

	// Over-limit case: Auto must fall back to Greedy and agree with it.
	big := Times{"a": make([]float64, 24), "b": make([]float64, 24)}
	for i := range big["a"] {
		big["a"][i], big["b"][i] = float64(i+1), float64(24-i)
	}
	a, exact, err = Auto(big, 24)
	if err != nil {
		t.Fatal(err)
	}
	if exact {
		t.Fatal("24 tasks should not be solved exactly")
	}
	g, err := Greedy(big, 24)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != g.Makespan {
		t.Fatalf("Auto fallback makespan = %v, Greedy = %v", a.Makespan, g.Makespan)
	}

	// Validation errors pass through instead of triggering the fallback.
	if _, _, err := Auto(Times{}, 1); err == nil {
		t.Fatal("empty Times should error")
	}
}

func TestGreedyFeasibleAndBounded(t *testing.T) {
	tm := twoGPUTimes()
	g, err := Greedy(tm, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BruteForce(tm, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.Makespan < b.Makespan {
		t.Fatalf("greedy %v beat brute force %v", g.Makespan, b.Makespan)
	}
	if len(g.GPUOf) != 4 {
		t.Fatalf("greedy assigned %d tasks", len(g.GPUOf))
	}
}

func TestMakespanOf(t *testing.T) {
	tm := twoGPUTimes()
	span, err := MakespanOf([]string{"fast", "fast", "slow", "slow"}, tm)
	if err != nil {
		t.Fatal(err)
	}
	if span != 14 { // slow: 6+8
		t.Fatalf("makespan = %v, want 14", span)
	}
	if _, err := MakespanOf([]string{"nope", "fast", "fast", "fast"}, tm); err == nil {
		t.Fatal("unknown GPU should error")
	}
}

func TestValidation(t *testing.T) {
	if err := (Times{}).Validate(1); err == nil {
		t.Fatal("empty Times should error")
	}
	if err := (Times{"a": {1, 2}}).Validate(3); err == nil {
		t.Fatal("wrong count should error")
	}
	if err := (Times{"a": {1, -2}}).Validate(2); err == nil {
		t.Fatal("negative time should error")
	}
	if err := (Times{"a": {1, math.NaN()}}).Validate(2); err == nil {
		t.Fatal("NaN time should error")
	}
}

// TestBruteForceOptimal: no random assignment may beat the brute-force
// makespan.
func TestBruteForceOptimal(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rnd := rand.New(rand.NewSource(seed))
		n := int(nRaw%6) + 2
		tm := Times{"g0": make([]float64, n), "g1": make([]float64, n)}
		for i := 0; i < n; i++ {
			tm["g0"][i] = rnd.Float64() + 0.01
			tm["g1"][i] = rnd.Float64() + 0.01
		}
		best, err := BruteForce(tm, n)
		if err != nil {
			return false
		}
		for trial := 0; trial < 30; trial++ {
			gpuOf := make([]string, n)
			for i := range gpuOf {
				gpuOf[i] = []string{"g0", "g1"}[rnd.Intn(2)]
			}
			span, err := MakespanOf(gpuOf, tm)
			if err != nil {
				return false
			}
			if span < best.Makespan-1e-12 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(19))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestGreedyNeverWorseThanTwiceOptimal: the LPT heuristic on two unrelated
// machines is within 2× of the optimum for these instance sizes (checked
// empirically against brute force).
func TestGreedyNeverWorseThanTwiceOptimal(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rnd := rand.New(rand.NewSource(seed))
		n := int(nRaw%8) + 2
		tm := Times{"g0": make([]float64, n), "g1": make([]float64, n)}
		for i := 0; i < n; i++ {
			tm["g0"][i] = rnd.Float64() + 0.01
			tm["g1"][i] = rnd.Float64() + 0.01
		}
		g, err1 := Greedy(tm, n)
		b, err2 := BruteForce(tm, n)
		if err1 != nil || err2 != nil {
			return false
		}
		return g.Makespan <= 2*b.Makespan+1e-12
	}
	cfg := &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(23))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestThreeGPUs(t *testing.T) {
	tm := Times{
		"a": {3, 3, 3},
		"b": {3, 3, 3},
		"c": {3, 3, 3},
	}
	a, err := BruteForce(tm, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != 3 {
		t.Fatalf("three identical tasks on three GPUs: makespan %v, want 3", a.Makespan)
	}
}
