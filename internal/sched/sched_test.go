package sched

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func twoGPUTimes() Times {
	return Times{
		"fast": {1, 2, 3, 4},
		"slow": {2, 4, 6, 8},
	}
}

func TestChooseGPU(t *testing.T) {
	tm := Times{
		"a": {1, 5, 3},
		"b": {2, 4, 3},
	}
	got, err := ChooseGPU(tm, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "a"} // ties go to the lexicographically first
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ChooseGPU = %v, want %v", got, want)
		}
	}
}

func TestBruteForceBeatsSingleGPU(t *testing.T) {
	tm := twoGPUTimes()
	a, err := BruteForce(tm, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Everything on "fast" costs 10; splitting must do better.
	if a.Makespan >= 10 {
		t.Fatalf("brute force makespan %v not better than single GPU", a.Makespan)
	}
	// Known optimum: fast {3,4}=7 or {1,2,4}=7, slow covers the rest.
	if a.Makespan != 7 {
		t.Fatalf("makespan = %v, want 7", a.Makespan)
	}
	// Loads must be consistent with the assignment.
	var check float64
	for _, l := range a.Load {
		if l > check {
			check = l
		}
	}
	if check != a.Makespan {
		t.Fatalf("makespan %v != max load %v", a.Makespan, check)
	}
}

func TestBruteForceSingleTask(t *testing.T) {
	tm := Times{"a": {5}, "b": {3}}
	a, err := BruteForce(tm, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.GPUOf[0] != "b" || a.Makespan != 3 {
		t.Fatalf("assignment = %+v", a)
	}
}

func TestBruteForceLimits(t *testing.T) {
	tm := Times{"a": make([]float64, 20), "b": make([]float64, 20)}
	for i := range tm["a"] {
		tm["a"][i], tm["b"][i] = 1, 1
	}
	if _, err := BruteForce(tm, 20); err == nil {
		t.Fatal("20 tasks should exceed the brute-force limit")
	}
}

func TestBruteForceSearchSpaceError(t *testing.T) {
	// 20 tasks on 2 GPUs: over the task limit.
	tm := Times{"a": make([]float64, 20), "b": make([]float64, 20)}
	for i := range tm["a"] {
		tm["a"][i], tm["b"][i] = 1, 2
	}
	_, err := BruteForce(tm, 20)
	if !errors.Is(err, ErrSearchSpace) {
		t.Fatalf("20-task error = %v, want ErrSearchSpace", err)
	}

	// 5 GPUs: over the GPU limit.
	wide := Times{}
	for _, g := range []string{"a", "b", "c", "d", "e"} {
		wide[g] = []float64{1, 2}
	}
	_, err = BruteForce(wide, 2)
	if !errors.Is(err, ErrSearchSpace) {
		t.Fatalf("5-GPU error = %v, want ErrSearchSpace", err)
	}

	// A validation error must NOT be ErrSearchSpace.
	_, err = BruteForce(Times{}, 3)
	if err == nil || errors.Is(err, ErrSearchSpace) {
		t.Fatalf("validation error = %v, want a non-search-space error", err)
	}
}

func TestAutoFallsBackToSearch(t *testing.T) {
	// In-limit case: Auto must return the brute-force optimum and exact=true.
	small := Times{"a": {1, 5}, "b": {5, 1}}
	a, exact, err := Auto(small, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !exact {
		t.Fatal("2 tasks on 2 GPUs should be solved exactly")
	}
	if a.Makespan != 1 {
		t.Fatalf("optimal makespan = %v, want 1", a.Makespan)
	}

	// Over-limit case: Auto routes to local search, which starts from an
	// LPT construction and only improves — it must never lose to Greedy.
	big := Times{"a": make([]float64, 24), "b": make([]float64, 24)}
	for i := range big["a"] {
		big["a"][i], big["b"][i] = float64(i+1), float64(24-i)
	}
	a, exact, err = Auto(big, 24)
	if err != nil {
		t.Fatal(err)
	}
	if exact {
		t.Fatal("24 tasks should not be reported as exact")
	}
	g, err := Greedy(big, 24)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan > g.Makespan+1e-12 {
		t.Fatalf("Auto fallback makespan = %v worse than Greedy = %v", a.Makespan, g.Makespan)
	}
	if len(a.GPUOf) != 24 || len(a.Load) != 2 {
		t.Fatalf("fallback assignment malformed: %+v", a)
	}

	// Validation errors pass through instead of triggering the fallback.
	if _, _, err := Auto(Times{}, 1); err == nil {
		t.Fatal("empty Times should error")
	}
}

// TestAutoRoutingTable pins the size thresholds that pick brute force vs
// the heuristic path: the exact flag is the observable routing decision.
func TestAutoRoutingTable(t *testing.T) {
	cases := []struct {
		name      string
		nTasks    int
		nGPUs     int
		wantExact bool
	}{
		{"tiny", 2, 2, true},
		{"at-task-limit", maxBruteForceTasks, 2, true},
		{"at-gpu-limit", 4, 4, true},
		{"over-task-limit", maxBruteForceTasks + 1, 2, false},
		{"over-gpu-limit", 4, 5, false},
		{"both-over", 40, 8, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dt := Synthetic(tc.nTasks, tc.nGPUs, 7)
			a, exact, err := Auto(dt.Times(), tc.nTasks)
			if err != nil {
				t.Fatal(err)
			}
			if exact != tc.wantExact {
				t.Fatalf("Auto(%d tasks, %d GPUs) exact = %v, want %v",
					tc.nTasks, tc.nGPUs, exact, tc.wantExact)
			}
			if len(a.GPUOf) != tc.nTasks {
				t.Fatalf("assigned %d of %d tasks", len(a.GPUOf), tc.nTasks)
			}
		})
	}
}

func TestGreedyInOrder(t *testing.T) {
	tm := twoGPUTimes()
	a, err := GreedyInOrder(tm, 4)
	if err != nil {
		t.Fatal(err)
	}
	// In input order on {fast: 1,2,3,4 / slow: 2,4,6,8}: task 0 → fast
	// (1 < 2), task 1 → slow (1+2 vs 2 ties at... fast finish 3, slow 4 →
	// fast), replaying the earliest-finish rule by hand gives:
	want, err := MakespanOf(a.GPUOf, tm)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != want {
		t.Fatalf("reported makespan %v inconsistent with assignment (%v)", a.Makespan, want)
	}
	// Order sensitivity is the point of the variant: six unit tasks then
	// one big task. In-order splits the units 3/3 and lands the big task
	// on top (makespan 9); LPT places the big task first and packs the
	// units opposite it (makespan 6).
	adv := Times{
		"g0": {1, 1, 1, 1, 1, 1, 6},
		"g1": {1, 1, 1, 1, 1, 1, 6},
	}
	inOrder, err := GreedyInOrder(adv, 7)
	if err != nil {
		t.Fatal(err)
	}
	lpt, err := Greedy(adv, 7)
	if err != nil {
		t.Fatal(err)
	}
	if inOrder.Makespan != 9 {
		t.Fatalf("in-order makespan = %v, want 9", inOrder.Makespan)
	}
	if lpt.Makespan != 6 {
		t.Fatalf("LPT makespan = %v, want 6", lpt.Makespan)
	}
}

func TestGreedyFeasibleAndBounded(t *testing.T) {
	tm := twoGPUTimes()
	g, err := Greedy(tm, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BruteForce(tm, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.Makespan < b.Makespan {
		t.Fatalf("greedy %v beat brute force %v", g.Makespan, b.Makespan)
	}
	if len(g.GPUOf) != 4 {
		t.Fatalf("greedy assigned %d tasks", len(g.GPUOf))
	}
}

func TestMakespanOf(t *testing.T) {
	tm := twoGPUTimes()
	span, err := MakespanOf([]string{"fast", "fast", "slow", "slow"}, tm)
	if err != nil {
		t.Fatal(err)
	}
	if span != 14 { // slow: 6+8
		t.Fatalf("makespan = %v, want 14", span)
	}
	if _, err := MakespanOf([]string{"nope", "fast", "fast", "fast"}, tm); err == nil {
		t.Fatal("unknown GPU should error")
	}
}

func TestValidation(t *testing.T) {
	if err := (Times{}).Validate(1); err == nil {
		t.Fatal("empty Times should error")
	}
	if err := (Times{"a": {1, 2}}).Validate(3); err == nil {
		t.Fatal("wrong count should error")
	}
	if err := (Times{"a": {1, -2}}).Validate(2); err == nil {
		t.Fatal("negative time should error")
	}
	if err := (Times{"a": {1, math.NaN()}}).Validate(2); err == nil {
		t.Fatal("NaN time should error")
	}
}

// TestBruteForceOptimal: no random assignment may beat the brute-force
// makespan.
func TestBruteForceOptimal(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rnd := rand.New(rand.NewSource(seed))
		n := int(nRaw%6) + 2
		tm := Times{"g0": make([]float64, n), "g1": make([]float64, n)}
		for i := 0; i < n; i++ {
			tm["g0"][i] = rnd.Float64() + 0.01
			tm["g1"][i] = rnd.Float64() + 0.01
		}
		best, err := BruteForce(tm, n)
		if err != nil {
			return false
		}
		for trial := 0; trial < 30; trial++ {
			gpuOf := make([]string, n)
			for i := range gpuOf {
				gpuOf[i] = []string{"g0", "g1"}[rnd.Intn(2)]
			}
			span, err := MakespanOf(gpuOf, tm)
			if err != nil {
				return false
			}
			if span < best.Makespan-1e-12 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(19))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestGreedyNeverWorseThanTwiceOptimal: the LPT heuristic on two unrelated
// machines is within 2× of the optimum for these instance sizes (checked
// empirically against brute force).
func TestGreedyNeverWorseThanTwiceOptimal(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rnd := rand.New(rand.NewSource(seed))
		n := int(nRaw%8) + 2
		tm := Times{"g0": make([]float64, n), "g1": make([]float64, n)}
		for i := 0; i < n; i++ {
			tm["g0"][i] = rnd.Float64() + 0.01
			tm["g1"][i] = rnd.Float64() + 0.01
		}
		g, err1 := Greedy(tm, n)
		b, err2 := BruteForce(tm, n)
		if err1 != nil || err2 != nil {
			return false
		}
		return g.Makespan <= 2*b.Makespan+1e-12
	}
	cfg := &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(23))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestThreeGPUs(t *testing.T) {
	tm := Times{
		"a": {3, 3, 3},
		"b": {3, 3, 3},
		"c": {3, 3, 3},
	}
	a, err := BruteForce(tm, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != 3 {
		t.Fatalf("three identical tasks on three GPUs: makespan %v, want 3", a.Makespan)
	}
}
