package sched

import (
	"math"
	"testing"
	"time"
)

// dyadicInstance builds a random table whose entries are dyadic rationals
// (multiples of 2⁻²⁰ in (0, 1]): sums and differences of a few thousand of
// them are exact in float64, so incremental bookkeeping can be compared to
// a from-scratch recompute with == rather than a tolerance.
func dyadicInstance(nTasks, nGPUs int, seed uint64) *DenseTimes {
	names := make([]string, nGPUs)
	for g := range names {
		names[g] = string(rune('a' + g))
	}
	dt, err := NewDenseTimes(names, nTasks)
	if err != nil {
		panic(err)
	}
	rng := newSplitMix(seed)
	for g := 0; g < nGPUs; g++ {
		row := dt.Row(g)
		for i := range row {
			row[i] = float64(1+rng.intn(1<<20)) / (1 << 20)
		}
	}
	return dt
}

// randomState builds a searchState over dt with a random initial
// assignment drawn from the same rng stream.
func randomState(dt *DenseTimes, rng *splitMix) *searchState {
	initial := make([]int32, dt.n)
	for i := range initial {
		initial[i] = int32(rng.intn(len(dt.gpus)))
	}
	return newSearchState(dt, initial, rng.next())
}

// checkStateExact compares the state's incremental loads, heap top, and
// span against a from-scratch recompute. With dyadic times everything must
// match exactly.
func checkStateExact(t *testing.T, s *searchState, dt *DenseTimes, step string) {
	t.Helper()
	load := make([]float64, s.g)
	want := exactMakespan(dt, s.gpuOf, load)
	for g := range load {
		if s.load[g] != load[g] {
			t.Fatalf("%s: GPU %d incremental load %v != recomputed %v", step, g, s.load[g], load[g])
		}
	}
	if s.span != want {
		t.Fatalf("%s: incremental span %v != recomputed %v", step, s.span, want)
	}
	if got := s.load[s.heapGPU[0]]; got != want {
		t.Fatalf("%s: heap top load %v != recomputed max %v", step, got, want)
	}
}

// TestIncrementalMatchesRecomputeExact is the property test behind the
// whole optimizer: replaying random move/swap sequences, the O(1)
// incremental deltas (evalMove/evalSwap predictions AND the applied state)
// must exactly match a from-scratch finishDense-style recompute.
func TestIncrementalMatchesRecomputeExact(t *testing.T) {
	for _, tc := range []struct{ n, g int }{
		{5, 2}, {17, 3}, {64, 5}, {200, 8}, {333, 13},
	} {
		for seed := uint64(0); seed < 4; seed++ {
			dt := dyadicInstance(tc.n, tc.g, 1000*seed+uint64(tc.n))
			rng := newSplitMix(seed * 77)
			s := randomState(dt, rng)
			checkStateExact(t, s, dt, "init")
			for step := 0; step < 500; step++ {
				i := rng.intn(tc.n)
				if tc.g > 1 && rng.next()&1 == 0 {
					to := int32(rng.intn(tc.g - 1))
					if to >= s.gpuOf[i] {
						to++
					}
					predicted := s.evalMove(i, to)
					s.applyMove(i, to)
					if s.span != predicted {
						t.Fatalf("move step %d: evalMove predicted %v, applied span %v", step, predicted, s.span)
					}
				} else {
					j := rng.intn(tc.n)
					if s.gpuOf[i] == s.gpuOf[j] {
						continue
					}
					predicted := s.evalSwap(i, j)
					s.applySwap(i, j)
					if s.span != predicted {
						t.Fatalf("swap step %d: evalSwap predicted %v, applied span %v", step, predicted, s.span)
					}
				}
				checkStateExact(t, s, dt, "step")
			}
		}
	}
}

// TestIncrementalDriftBounded repeats the replay with arbitrary floats: the
// incremental span may drift from the exact recompute only within 1e-12
// relative — the bound the final finishDense pass then clears entirely.
func TestIncrementalDriftBounded(t *testing.T) {
	dt := Synthetic(500, 6, 99)
	rng := newSplitMix(5)
	s := randomState(dt, rng)
	load := make([]float64, s.g)
	for step := 0; step < 2000; step++ {
		i := rng.intn(500)
		to := int32(rng.intn(5))
		if to >= s.gpuOf[i] {
			to++
		}
		s.applyMove(i, to)
		want := exactMakespan(dt, s.gpuOf, load)
		if math.Abs(s.span-want) > 1e-12*want {
			t.Fatalf("step %d: incremental span %v drifted beyond 1e-12 of %v", step, s.span, want)
		}
	}
}

// TestSearchMatchesBruteForce: on every brute-force-feasible shape the
// local search must land on the optimal makespan within 1e-12 relative.
func TestSearchMatchesBruteForce(t *testing.T) {
	shapes := []struct{ n, g int }{
		{6, 2}, {10, 2}, {12, 2}, {6, 3}, {8, 3}, {5, 4}, {6, 4}, {16, 2},
	}
	for _, sh := range shapes {
		for seed := int64(1); seed <= 4; seed++ {
			dt := Synthetic(sh.n, sh.g, seed)
			opt, err := BruteForce(dt.Times(), sh.n)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Schedule(dt, SearchOptions{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if res.Makespan > opt.Makespan*(1+1e-12) {
				t.Fatalf("n=%d g=%d seed=%d: search %v, brute force %v",
					sh.n, sh.g, seed, res.Makespan, opt.Makespan)
			}
			if res.Makespan < opt.Makespan*(1-1e-12) {
				t.Fatalf("n=%d g=%d seed=%d: search %v beat the exact optimum %v — bug in one of them",
					sh.n, sh.g, seed, res.Makespan, opt.Makespan)
			}
			if res.LowerBound > opt.Makespan*(1+1e-12) {
				t.Fatalf("n=%d g=%d seed=%d: lower bound %v exceeds the optimum %v",
					sh.n, sh.g, seed, res.LowerBound, opt.Makespan)
			}
		}
	}
}

// TestScheduleDeterministic: same table and options, same result — bit for
// bit — regardless of how the restart goroutines interleave.
func TestScheduleDeterministic(t *testing.T) {
	dt := Synthetic(3000, 7, 11)
	first, err := Schedule(dt, SearchOptions{Seed: 3, Moves: 20000})
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		res, err := Schedule(dt, SearchOptions{Seed: 3, Moves: 20000})
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan != first.Makespan || res.BestRestart != first.BestRestart {
			t.Fatalf("run %d: makespan %v (restart %d) != first %v (restart %d)",
				run, res.Makespan, res.BestRestart, first.Makespan, first.BestRestart)
		}
		for i := range res.Dense.GPUOf {
			if res.Dense.GPUOf[i] != first.Dense.GPUOf[i] {
				t.Fatalf("run %d: task %d on GPU %d, first run had %d",
					run, i, res.Dense.GPUOf[i], first.Dense.GPUOf[i])
			}
		}
	}
}

// TestScheduleGapAndBound checks the result invariants on mid-size
// instances: the lower bound never exceeds the makespan, the gap is
// consistent, and the result is a valid assignment.
func TestScheduleGapAndBound(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		dt := Synthetic(5000, 8, seed)
		res, err := Schedule(dt, SearchOptions{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if res.LowerBound <= 0 || res.LowerBound > res.Makespan {
			t.Fatalf("seed %d: lower bound %v vs makespan %v", seed, res.LowerBound, res.Makespan)
		}
		wantGap := (res.Makespan - res.LowerBound) / res.LowerBound
		if res.Gap != wantGap {
			t.Fatalf("seed %d: gap %v, want %v", seed, res.Gap, wantGap)
		}
		if res.Gap > 0.10 {
			t.Fatalf("seed %d: gap %.2f%% above the 10%% budget", seed, 100*res.Gap)
		}
		load := make([]float64, dt.NumGPUs())
		if got := exactMakespan(dt, res.Dense.GPUOf, load); got != res.Makespan {
			t.Fatalf("seed %d: reported makespan %v != recomputed %v", seed, res.Makespan, got)
		}
	}
}

// TestScheduleMillionTasks is the acceptance-scale run: a seeded
// 1,000,000-task × 8-GPU instance must schedule within the CI budget with
// a certified gap at or below 10%.
func TestScheduleMillionTasks(t *testing.T) {
	if testing.Short() {
		t.Skip("million-task instance skipped in -short mode")
	}
	const nTasks, nGPUs = 1_000_000, 8
	start := time.Now()
	dt := Synthetic(nTasks, nGPUs, 42)
	res, err := Schedule(dt, SearchOptions{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	rate := float64(nTasks) / elapsed.Seconds()
	t.Logf("10⁶×%d: makespan %.3fs, LB %.3fs, gap %.3f%%, %.0f tasks/sec, %v total",
		nGPUs, res.Makespan, res.LowerBound, 100*res.Gap, rate, elapsed)
	if res.Gap > 0.10 {
		t.Fatalf("gap %.2f%% above the 10%% acceptance bound", 100*res.Gap)
	}
	if !raceEnabled && elapsed > 30*time.Second {
		// The budget is for uninstrumented builds; -race slows the move
		// loop ~7x and only the correctness assertions apply there.
		t.Fatalf("schedule took %v, acceptance budget is 30s", elapsed)
	}
}

// TestLowerBoundDominance: LowerBound must be at least both closed-form
// bounds it claims to dominate, and feasible schedules must never beat it.
func TestLowerBoundDominance(t *testing.T) {
	for _, seed := range []int64{1, 9, 17} {
		dt := Synthetic(400, 5, seed)
		lb, err := LowerBound(dt)
		if err != nil {
			t.Fatal(err)
		}
		mins := taskMins(dt)
		if lb < mins.maxMin {
			t.Fatalf("LB %v below best-time bound %v", lb, mins.maxMin)
		}
		if frac := mins.sumMin / float64(dt.NumGPUs()); lb < frac {
			t.Fatalf("LB %v below fractional bound %v", lb, frac)
		}
		res, err := Schedule(dt, SearchOptions{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan < lb*(1-1e-12) {
			t.Fatalf("schedule %v beat the \"lower\" bound %v", res.Makespan, lb)
		}
	}
}

// TestListScheduleLookahead: the construction is valid for any window, and
// window 1 is plain LPT.
func TestListScheduleLookahead(t *testing.T) {
	dt := Synthetic(300, 4, 5)
	load := make([]float64, dt.NumGPUs())
	for _, w := range []int{0, 1, 2, 8, 64, 1000} {
		a, err := ListSchedule(dt, w)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.GPUOf) != 300 {
			t.Fatalf("window %d: %d tasks assigned", w, len(a.GPUOf))
		}
		if got := exactMakespan(dt, a.GPUOf, load); got != a.Makespan {
			t.Fatalf("window %d: makespan %v != recomputed %v", w, a.Makespan, got)
		}
	}
}

// TestPolicySubstrate exercises the pluggable Policy interface end to end.
func TestPolicySubstrate(t *testing.T) {
	dt := Synthetic(200, 3, 8)
	policies := []Policy{
		ListPolicy{},
		ListPolicy{Lookahead: 8},
		SearchPolicy{Options: SearchOptions{Seed: 8}},
	}
	names := map[string]bool{}
	for _, p := range policies {
		if names[p.Name()] {
			t.Fatalf("duplicate policy name %q", p.Name())
		}
		names[p.Name()] = true
		a, err := p.Schedule(dt)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if len(a.GPUOf) != 200 {
			t.Fatalf("%s assigned %d tasks", p.Name(), len(a.GPUOf))
		}
	}
}

// TestDenseRoundTrip: map → dense → map conversions preserve the table and
// the interned order is the sorted name order.
func TestDenseRoundTrip(t *testing.T) {
	tm := Times{
		"b": {1, 2, 3},
		"a": {4, 5, 6},
		"c": {7, 8, 9},
	}
	dt, err := FromTimes(tm, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := dt.GPUs(); got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("interned order %v, want sorted names", got)
	}
	back := dt.Times()
	for name, row := range tm {
		for i, v := range row {
			if back[name][i] != v {
				t.Fatalf("round trip lost %s[%d]: %v != %v", name, i, back[name][i], v)
			}
		}
	}
	if g, ok := dt.GPUIndex("b"); !ok || g != 1 {
		t.Fatalf("GPUIndex(b) = %d, %v", g, ok)
	}
	if dt.At(1, 2) != 3 {
		t.Fatalf("At(1,2) = %v, want 3", dt.At(1, 2))
	}
}

// TestDenseValidation covers the table constructors' error paths.
func TestDenseValidation(t *testing.T) {
	if _, err := NewDenseTimes(nil, 3); err == nil {
		t.Fatal("no GPUs should error")
	}
	if _, err := NewDenseTimes([]string{"a"}, 0); err == nil {
		t.Fatal("zero tasks should error")
	}
	if _, err := NewDenseTimes([]string{"a", "a"}, 2); err == nil {
		t.Fatal("duplicate GPU names should error")
	}
	if _, err := NewDenseTimes([]string{""}, 2); err == nil {
		t.Fatal("empty GPU name should error")
	}
	dt, err := NewDenseTimes([]string{"a"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := dt.Validate(); err == nil {
		t.Fatal("zero-filled table should fail Validate")
	}
	if _, err := Schedule(dt, SearchOptions{}); err == nil {
		t.Fatal("Schedule must reject an invalid table")
	}
	if _, err := Schedule(nil, SearchOptions{}); err == nil {
		t.Fatal("Schedule must reject a nil table")
	}
	if _, err := ListSchedule(nil, 1); err == nil {
		t.Fatal("ListSchedule must reject a nil table")
	}
	if _, err := LowerBound(nil); err == nil {
		t.Fatal("LowerBound must reject a nil table")
	}
}

// TestSyntheticDeterministic: the benchmark generator is a pure function
// of its arguments.
func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(100, 4, 7)
	b := Synthetic(100, 4, 7)
	for g := 0; g < 4; g++ {
		ra, rb := a.Row(g), b.Row(g)
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("Synthetic not deterministic at (%d, %d)", g, i)
			}
		}
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("Synthetic table invalid: %v", err)
	}
	c := Synthetic(100, 4, 8)
	same := true
	for g := 0; g < 4 && same; g++ {
		rc := c.Row(g)
		for i, v := range a.Row(g) {
			if v != rc[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical tables")
	}
}

// TestScheduleSingleGPU covers the degenerate one-GPU fast path.
func TestScheduleSingleGPU(t *testing.T) {
	dt := Synthetic(50, 1, 3)
	res, err := Schedule(dt, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range dt.Row(0) {
		sum += v
	}
	if res.Makespan != sum {
		t.Fatalf("single GPU makespan %v != total work %v", res.Makespan, sum)
	}
	if res.Gap != 0 {
		t.Fatalf("single GPU gap = %v, want 0", res.Gap)
	}
}
