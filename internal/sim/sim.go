// Package sim is the synthetic ground-truth generator that stands in for the
// paper's physical GPUs (see DESIGN.md §2 for the substitution argument). It
// assigns every kernel invocation a "measured" duration from a seeded
// roofline-style device model:
//
//	t = max(FLOPs/(computeEff·peakFLOPS), bytes/(bwEff·peakBW)) / util + overhead
//
// with per-(kernel-name, GPU) efficiencies drawn deterministically from a
// hash, a soft SM-utilization term, a fixed per-kernel device overhead, and
// lognormal measurement noise.
//
// The model is constructed so the dataset it generates exhibits the paper's
// observations O1–O6 — but the predictors in internal/core never see these
// rules or parameters; they only see the resulting measurements, exactly as
// the paper's models only see profiler output.
package sim

import (
	"math"
	"math/rand"
	"strconv"

	"repro/internal/dnn"
	"repro/internal/gpu"
	"repro/internal/kernels"
)

// Config holds the device-model constants. Zero fields take defaults.
type Config struct {
	// Seed perturbs every hashed efficiency, giving a distinct "universe"
	// of device behaviour (useful for robustness tests). The default 0 is
	// the canonical universe all experiments use.
	Seed int64

	// NoiseSigma is the per-invocation lognormal measurement noise.
	NoiseSigma float64
	// KernelOverheadUS is the fixed device-side cost per kernel (ramp-up,
	// tail effect), in microseconds. It is part of the *measured kernel
	// duration*, as a profiler would report it.
	KernelOverheadUS float64
	// PipelineOverlapUS is the per-kernel-boundary saving when consecutive
	// kernels pipeline back-to-back in a real stream; it reduces end-to-end
	// wall time below the sum of individually-measured durations and is the
	// mechanism behind the kernel-wise model's overestimation tail on tiny
	// networks (§5.4).
	PipelineOverlapUS float64
	// PipelineOverlapFrac is the proportional part of the same effect: each
	// kernel boundary additionally hides this fraction of the shorter
	// neighbour (tail/ramp overlap between back-to-back kernels). A model
	// that sums individually measured kernel durations cannot observe it —
	// it is why the kernel-wise S-curve almost never underestimates
	// (Figure 13).
	PipelineOverlapFrac float64
	// BatchFloorUS is the per-batch CPU scheduling overhead added to
	// end-to-end wall time (§4 O1: the linear trend breaks at low FLOPs).
	BatchFloorUS float64
	// UtilElems scales the soft SM-utilization knee of the compute leg: a
	// kernel writing x elements computes at utilization x/(x+UtilElems·SM).
	UtilElems float64
	// MemKneeBytes scales the bandwidth-utilization knee of the memory leg:
	// a kernel moving b bytes sustains b/(b+MemKneeBytes·SM) of its
	// achievable bandwidth. Large streaming transfers (e.g. FC weight
	// reads) saturate DRAM even at low occupancy, so this knee is in bytes,
	// not output elements.
	MemKneeBytes float64
}

// DefaultConfig returns the canonical device-model constants.
func DefaultConfig() Config {
	return Config{
		NoiseSigma:          0.03,
		KernelOverheadUS:    1.8,
		PipelineOverlapUS:   1.1,
		PipelineOverlapFrac: 0.06,
		BatchFloorUS:        60,
		UtilElems:           3072,
		MemKneeBytes:        32 << 10,
	}
}

// withDefaults fills zero fields from DefaultConfig.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.NoiseSigma == 0 {
		c.NoiseSigma = d.NoiseSigma
	}
	if c.KernelOverheadUS == 0 {
		c.KernelOverheadUS = d.KernelOverheadUS
	}
	if c.PipelineOverlapUS == 0 {
		c.PipelineOverlapUS = d.PipelineOverlapUS
	}
	if c.PipelineOverlapFrac == 0 {
		c.PipelineOverlapFrac = d.PipelineOverlapFrac
	}
	if c.BatchFloorUS == 0 {
		c.BatchFloorUS = d.BatchFloorUS
	}
	if c.UtilElems == 0 {
		c.UtilElems = d.UtilElems
	}
	if c.MemKneeBytes == 0 {
		c.MemKneeBytes = d.MemKneeBytes
	}
	return c
}

// Device is a timing model of one GPU.
type Device struct {
	GPU gpu.Spec
	cfg Config
	// seedBytes is the little-endian encoding of cfg.Seed, precomputed so
	// the per-kernel efficiency hashes never re-serialize it.
	seedBytes [8]byte
}

// New builds a device model for the given GPU with the given configuration.
func New(g gpu.Spec, cfg Config) *Device {
	d := &Device{GPU: g, cfg: cfg.withDefaults()}
	for i := 0; i < 8; i++ {
		d.seedBytes[i] = byte(d.cfg.Seed >> (8 * i))
	}
	return d
}

// NewDefault builds a device model with canonical constants.
func NewDefault(g gpu.Spec) *Device { return New(g, Config{}) }

// Config returns the device's resolved configuration.
func (d *Device) Config() Config { return d.cfg }

// fnv64a constants (hash/fnv), inlined so the hot hashing path runs without
// allocations or interface calls. The digest of hashAdd/hashFinish over a
// byte sequence is bit-identical to hash/fnv's New64a().Write(...).Sum64().
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashAddString folds s into an fnv-1a state.
func hashAddString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// hashAddInt folds the decimal representation of v into an fnv-1a state —
// the same bytes fmt's %d verb would produce — without allocating.
func hashAddInt(h uint64, v int64) uint64 {
	var buf [20]byte
	for _, b := range strconv.AppendInt(buf[:0], v, 10) {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	return h
}

// hashState seeds an fnv-1a state with the device's universe seed. The byte
// stream (seed bytes, then the caller's parts) matches the previous
// fmt/hash.Hash64 implementation, so every derived efficiency is
// bit-identical.
func (d *Device) hashState() uint64 {
	h := uint64(fnvOffset64)
	for _, b := range d.seedBytes {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	return h
}

// hashTo01 converts a finished fnv-1a state to a uniform value in [0, 1).
func hashTo01(h uint64) float64 { return float64(h>>11) / float64(1<<53) }

// hash01 maps a string (plus the universe seed) to a uniform value in [0, 1).
func (d *Device) hash01(s string) float64 {
	return hashTo01(hashAddString(d.hashState(), s))
}

// hash01Parts is hash01 over the concatenation of parts, computed without
// building the intermediate string.
func (d *Device) hash01Parts(parts ...string) float64 {
	h := d.hashState()
	for _, p := range parts {
		h = hashAddString(h, p)
	}
	return hashTo01(h)
}

// archComputeFactor reflects generation-over-generation efficiency of the
// compute pipeline at equal theoretical TFLOPS.
func archComputeFactor(arch string) float64 {
	switch arch {
	case "Ampere":
		return 1.0
	case "Turing":
		return 0.95
	case "Volta":
		return 0.90
	case "Pascal":
		return 0.85
	default:
		return 0.92
	}
}

// archMemFactor reflects how much of the theoretical bandwidth each memory
// subsystem generation sustains (GDDR6X/HBM2e vs GDDR6 vs HBM2 vs GDDR5X).
// It is a systematic, architecture-specific component the inter-GPU model
// cannot see from the spec sheet — one source of its residual error.
func archMemFactor(arch string) float64 {
	switch arch {
	case "Ampere":
		return 1.0
	case "Turing":
		return 0.96
	case "Volta":
		return 0.97
	case "Pascal":
		return 0.88
	default:
		return 0.95
	}
}

// archSensitivity scales how unevenly an architecture's memory behaviour
// treats different kernel families (coalescing rules, L2 policies and cache
// sizes change across generations, and different access patterns care
// differently). The per-family penalty drawn from it is the long-tail
// component of the inter-GPU model's error: a network dominated by an
// unlucky kernel family on the target architecture is mispredicted by far
// more than the average (Figure 14's tail).
func archSensitivity(arch string) float64 {
	switch arch {
	case "Ampere":
		return 0.0 // reference generation
	case "Turing":
		return 0.42
	case "Volta":
		return 0.20
	case "Pascal":
		return 0.45
	default:
		return 0.2
	}
}

// Efficiencies returns the deterministic (computeEff, bwEff) pair of a kernel
// family on this device. bwEff is dominated by the kernel family — only a
// small GPU-specific jitter is applied — which is the mechanism behind
// observation O6 (stable bandwidth efficiency across GPUs) and the premise of
// the inter-GPU model.
func (d *Device) Efficiencies(kernelName string) (computeEff, bwEff float64) {
	fam := d.hash01Parts("fam:", kernelName)
	famBW := d.hash01Parts("fambw:", kernelName)
	jitC := d.hash01Parts("jitc:", kernelName, "|", d.GPU.Name)
	jitB := d.hash01Parts("jitb:", kernelName, "|", d.GPU.Name)

	computeEff = (0.16 + 0.24*fam) * archComputeFactor(d.GPU.Architecture)
	computeEff *= 1 + 0.20*(jitC-0.5) // ±10 % GPU-specific
	bwEff = (0.145 + 0.07*famBW) * algoBWFactor(kernelName) * archMemFactor(d.GPU.Architecture)
	if sens := archSensitivity(d.GPU.Architecture); sens > 0 {
		// The penalty is keyed by the kernel's algorithm group (the token
		// before the first underscore), so a whole algorithm pipeline —
		// e.g. every Winograd stage — shifts coherently on an architecture.
		h := d.hash01Parts("archsens:", algoGroup(kernelName), "|", d.GPU.Architecture)
		bwEff *= 1 - sens*h*h // quadratic: most groups mild, a few severe
	}
	bwEff *= 1 + 0.20*(jitB-0.5) // ±10 % GPU-specific
	return computeEff, bwEff
}

// algoGroup returns the kernel's algorithm-pipeline group: the leading name
// token ("winograd", "implicit", "bn", …).
func algoGroup(kernelName string) string {
	for i := 0; i < len(kernelName); i++ {
		if kernelName[i] == '_' {
			return kernelName[:i]
		}
	}
	return kernelName
}

// algoBWFactor captures the well-known efficiency gaps between kernel
// algorithm families at equal traffic: Winograd/GEMM pipelines stream close
// to peak, depthwise and grouped convolutions are notoriously
// bandwidth-inefficient. This is the within-layer-type heterogeneity that a
// per-layer-type model (LW) cannot see but a per-kernel model (KW) can —
// the gap between Figures 12 and 13.
func algoBWFactor(kernelName string) float64 {
	prefix := func(p string) bool {
		return len(kernelName) >= len(p) && kernelName[:len(p)] == p
	}
	switch {
	case prefix("winograd_gemm"):
		return 1.18
	case prefix("sgemm"), prefix("batched_gemm"):
		return 1.15
	case prefix("implicit_gemm"):
		return 1.0
	case prefix("fft"):
		return 0.92
	case prefix("direct_conv"):
		return 0.80
	case prefix("grouped_gemm"):
		return 0.72
	case prefix("depthwise_conv"):
		return 0.66
	case prefix("elementwise"), prefix("add_bias"), prefix("cat_copy"),
		prefix("channel_shuffle"), prefix("embedding"), prefix("softmax"),
		prefix("layernorm"):
		// Simple streaming kernels sustain a large fraction of peak DRAM
		// bandwidth; the ~15 % baseline below models tiled GEMM pipelines.
		return 2.0
	case prefix("bn_fwd"):
		// Batch norm's strided, multi-pass access pattern is notoriously
		// inefficient (the paper's Figure 7 places BN on a slow trend line).
		return 0.85
	case prefix("pooling"):
		return 0.75
	default:
		return 1.0
	}
}

// shapeFactor is the problem-geometry efficiency modulation: real kernels
// run at different efficiencies for different aspect ratios, tile
// utilizations and channel alignments even at the same total work. It is a
// deterministic function of the kernel family and a coarse size bucket, so
// it is *systematic* — a per-kernel linear model cannot average it away —
// and is one source of the kernel-wise model's residual error.
func (d *Device) shapeFactor(k kernels.Kernel) float64 {
	b := k.Bytes()
	if b <= 0 {
		b = 1
	}
	bucket := 0
	for b > 1 {
		b >>= 1
		bucket++
	}
	h := hashAddString(d.hashState(), "shape:")
	h = hashAddString(h, k.Name)
	h = hashAddString(h, ":")
	u := hashTo01(hashAddInt(h, int64(bucket)))
	return 1 + 0.20*(u-0.5) // ±10 %
}

// geomFactor models efficiency differences across layer *geometries* at the
// same kernel: tile quantization, channel alignment and aspect-ratio effects
// make two problems of equal size run at different speeds. The key is
// batch-size invariant (built from per-output work and the input/output
// ratio, both independent of N), so it shifts whole layer configurations
// coherently — the per-network systematic residual behind the kernel-wise
// model's ~7 % error — without distorting batch-size extrapolation.
func (d *Device) geomFactor(k kernels.Kernel) float64 {
	workPerOut := 0
	if k.LayerOutputElems > 0 && k.LayerFLOPs > 0 {
		w := k.LayerFLOPs / k.LayerOutputElems
		for w > 1 {
			w >>= 1
			workPerOut++
		}
	}
	ratio := 0
	if k.LayerOutputElems > 0 && k.LayerInputElems > 0 {
		// Quarter-log2 buckets of the in/out size ratio.
		r := float64(k.LayerInputElems) / float64(k.LayerOutputElems)
		ratio = int(4 * math.Log2(r))
	}
	h := hashAddString(d.hashState(), "geom:")
	h = hashAddString(h, k.Name)
	h = hashAddString(h, ":")
	h = hashAddInt(h, int64(workPerOut))
	h = hashAddString(h, ":")
	u := hashTo01(hashAddInt(h, int64(ratio)))
	return 1 + 0.40*(u-0.5) // ±20 %
}

// curveRefBytes anchors the scaling-curvature term: kernels at this traffic
// level run at their nominal efficiency.
const curveRefBytes = 1 << 27 // 128 MiB

// curvatureFactor models the mild non-linearity of real kernel scaling
// (cache effects at small sizes, DRAM-page behaviour at large ones): each
// kernel family's time follows x^(1+ε) with a small family-specific ε, so a
// straight line fitted through a family's size range is systematically biased
// at the extremes. Unlike bucket jitter, this bias does not cancel when
// summing a network's kernels — it is the dominant, non-averaging component
// of the kernel-wise model's error.
func (d *Device) curvatureFactor(k kernels.Kernel) float64 {
	b := float64(k.Bytes())
	if b <= 0 {
		return 1
	}
	eps := 0.16 * (d.hash01Parts("curve:", k.Name) - 0.5) // ε ∈ ±0.08
	return math.Pow(b/curveRefBytes, eps)
}

// BaseKernelTime returns the noiseless duration of a kernel invocation on
// this device, in seconds.
func (d *Device) BaseKernelTime(k kernels.Kernel) float64 {
	compEff, bwEff := d.Efficiencies(k.Name)

	// Compute leg: small kernels cannot fill the SMs.
	tc := float64(k.FLOPs) / (compEff * d.GPU.PeakFLOPS())
	kneeC := d.cfg.UtilElems * float64(d.GPU.SMCount)
	x := float64(k.LayerOutputElems)
	if x <= 0 {
		x = 1
	}
	tc /= x / (x + kneeC)

	// Memory leg: small transfers cannot saturate DRAM, but large streaming
	// reads (weights) do so regardless of occupancy.
	bytes := float64(k.Bytes())
	tm := bytes / (bwEff * d.GPU.PeakBytesPerSec())
	kneeM := d.cfg.MemKneeBytes * float64(d.GPU.SMCount)
	if bytes > 0 {
		tm /= bytes / (bytes + kneeM)
	}

	t := tc
	if tm > t {
		t = tm
	}
	t *= d.shapeFactor(k) * d.geomFactor(k) * d.curvatureFactor(k)
	return t + d.cfg.KernelOverheadUS*1e-6
}

// KernelTime returns one noisy measured duration of a kernel invocation,
// drawing measurement noise from rnd.
func (d *Device) KernelTime(k kernels.Kernel, rnd *rand.Rand) float64 {
	return d.BaseKernelTime(k) * lognormal(rnd, d.cfg.NoiseSigma)
}

// MemoryBound reports whether the kernel's roofline leg is the memory side
// on this device (used by analysis tests, not by the predictors).
func (d *Device) MemoryBound(k kernels.Kernel) bool {
	compEff, bwEff := d.Efficiencies(k.Name)
	tc := float64(k.FLOPs) / (compEff * d.GPU.PeakFLOPS())
	tm := float64(k.Bytes()) / (bwEff * d.GPU.PeakBytesPerSec())
	return tm >= tc
}

// WallTime assembles the measured end-to-end wall time of one batch from the
// (already noisy) kernel durations: consecutive kernels pipeline and save
// PipelineOverlapUS per boundary (never more than the kernel itself), and the
// per-batch CPU scheduling floor is added.
func (d *Device) WallTime(kernelDurations []float64) float64 {
	wall := d.cfg.BatchFloorUS * 1e-6
	overlap := d.cfg.PipelineOverlapUS * 1e-6
	for i, t := range kernelDurations {
		if i > 0 {
			shorter := t
			if prev := kernelDurations[i-1]; prev < shorter {
				shorter = prev
			}
			saved := overlap + d.cfg.PipelineOverlapFrac*shorter
			if saved > t*0.8 {
				saved = t * 0.8
			}
			t -= saved
		}
		wall += t
	}
	return wall
}

// workspaceBytes is the scratch allocation a cuDNN-like library keeps
// resident (plans, autotuning workspaces).
const workspaceBytes = 512 << 20

// InferenceFootprint is the resident-memory requirement of an inference run
// at the network's current (inferred) shapes. At inference only the live
// tensors are resident, so the activation term is the peak (producer +
// consumer) estimate rather than the sum over all layers.
func InferenceFootprint(n *dnn.Network) int64 {
	return n.WeightBytes() + n.PeakActivationBytes() + workspaceBytes
}

// TrainingFootprint is the training-step variant: every activation is
// retained for the backward pass, and weights carry gradient plus optimizer
// state (SGD momentum: 3× the parameter footprint in total).
func TrainingFootprint(n *dnn.Network) int64 {
	return 3*n.WeightBytes() + n.ActivationBytes() + workspaceBytes
}

// FitsFootprint reports whether a precomputed memory footprint fits in the
// device memory. The profiler snapshots a network's footprint once per
// (network, batch) and re-checks it cheaply per device.
func (d *Device) FitsFootprint(need int64) bool { return need <= d.GPU.MemBytes() }

// FitsMemory reports whether a network at the given batch size fits in the
// device memory; when it does not, execution fails like the paper's
// out-of-memory runs (§3, "we clean the dataset by removing ... fail-to-
// execute experiments").
func (d *Device) FitsMemory(n *dnn.Network) bool {
	return d.FitsFootprint(InferenceFootprint(n))
}

// FitsMemoryTraining is the training-step variant of FitsMemory.
func (d *Device) FitsMemoryTraining(n *dnn.Network) bool {
	return d.FitsFootprint(TrainingFootprint(n))
}

// lognormal returns exp(N(0, sigma²)) drawn from rnd.
func lognormal(rnd *rand.Rand, sigma float64) float64 {
	if sigma <= 0 {
		return 1
	}
	return math.Exp(rnd.NormFloat64() * sigma)
}
