package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gpu"
	"repro/internal/kernels"
	"repro/internal/zoo"
)

// testKernel builds a representative main-compute kernel invocation.
func testKernel(name string, flops, bytes, outElems int64) kernels.Kernel {
	return kernels.Kernel{
		Name:             name,
		Class:            kernels.ClassOperation,
		FLOPs:            flops,
		BytesRead:        bytes / 2,
		BytesWritten:     bytes - bytes/2,
		LayerFLOPs:       flops,
		LayerInputElems:  outElems,
		LayerOutputElems: outElems,
	}
}

func TestBaseKernelTimeDeterministic(t *testing.T) {
	d1 := NewDefault(gpu.A100)
	d2 := NewDefault(gpu.A100)
	k := testKernel("winograd_gemm_128x64", 1e9, 1e8, 1e6)
	if d1.BaseKernelTime(k) != d2.BaseKernelTime(k) {
		t.Fatal("BaseKernelTime is not deterministic")
	}
}

func TestBaseKernelTimePositiveFinite(t *testing.T) {
	d := NewDefault(gpu.V100)
	f := func(flopsRaw, bytesRaw uint32, outRaw uint16) bool {
		k := testKernel("implicit_gemm_64x64",
			int64(flopsRaw), int64(bytesRaw)+1, int64(outRaw)+1)
		got := d.BaseKernelTime(k)
		return got > 0 && !math.IsInf(got, 0) && !math.IsNaN(got)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMuchMoreWorkTakesLonger(t *testing.T) {
	// Size-bucket jitter and curvature allow small non-monotonicities, but
	// a 64× larger problem must always take longer.
	d := NewDefault(gpu.A100)
	small := testKernel("implicit_gemm_128x64", 1e9, 1e8, 1e6)
	big := testKernel("implicit_gemm_128x64", 64e9, 64e8, 64e6)
	ts, tb := d.BaseKernelTime(small), d.BaseKernelTime(big)
	if tb <= ts {
		t.Fatalf("64× work: %v ≤ %v", tb, ts)
	}
}

func TestOverheadFloorsTinyKernels(t *testing.T) {
	d := NewDefault(gpu.A100)
	tiny := testKernel("elementwise_relu", 10, 40, 10)
	got := d.BaseKernelTime(tiny)
	floor := d.Config().KernelOverheadUS * 1e-6
	if got < floor {
		t.Fatalf("tiny kernel time %v below the launch overhead %v", got, floor)
	}
}

func TestEfficienciesInRange(t *testing.T) {
	for _, g := range gpu.All() {
		d := NewDefault(g)
		for _, name := range []string{"winograd_gemm_128x128", "bn_fwd_inference",
			"elementwise_relu", "depthwise_conv_k3_s1", "sgemm_256x128"} {
			c, b := d.Efficiencies(name)
			if c <= 0 || c >= 1 {
				t.Errorf("%s on %s: computeEff = %v", name, g.Name, c)
			}
			if b <= 0 || b >= 1 {
				t.Errorf("%s on %s: bwEff = %v", name, g.Name, b)
			}
		}
	}
}

// TestO6BandwidthEfficiencyStability verifies the mechanism behind
// observation O6: for a fixed kernel, bandwidth efficiency varies far less
// across GPUs (after removing the architecture factor) than it varies across
// kernels on one GPU.
func TestO6BandwidthEfficiencyStability(t *testing.T) {
	kernelsUnderTest := []string{
		"winograd_gemm_128x128", "implicit_gemm_64x64", "bn_fwd_inference",
		"elementwise_relu", "pooling_fwd_max", "sgemm_128x128",
	}
	// Use same-architecture GPUs to isolate the per-GPU jitter.
	gpus := []gpu.Spec{gpu.A100, gpu.A40, gpu.RTXA5000}

	var acrossGPU, acrossKernel []float64
	for _, k := range kernelsUnderTest {
		var effs []float64
		for _, g := range gpus {
			_, b := NewDefault(g).Efficiencies(k)
			effs = append(effs, b)
		}
		acrossGPU = append(acrossGPU, spread(effs))
	}
	d := NewDefault(gpu.A100)
	var effs []float64
	for _, k := range kernelsUnderTest {
		_, b := d.Efficiencies(k)
		effs = append(effs, b)
	}
	acrossKernel = append(acrossKernel, spread(effs))

	if mean(acrossGPU) >= mean(acrossKernel) {
		t.Fatalf("bwEff spread across GPUs (%v) should be below spread across kernels (%v)",
			mean(acrossGPU), mean(acrossKernel))
	}
}

func spread(xs []float64) float64 {
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		lo, hi = math.Min(lo, x), math.Max(hi, x)
	}
	return hi / lo
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestSeedChangesUniverse(t *testing.T) {
	a := New(gpu.A100, Config{Seed: 0})
	b := New(gpu.A100, Config{Seed: 1})
	k := testKernel("winograd_gemm_128x64", 1e9, 1e8, 1e6)
	if a.BaseKernelTime(k) == b.BaseKernelTime(k) {
		t.Fatal("different seeds should give different device behaviour")
	}
}

func TestKernelTimeNoiseAveragesOut(t *testing.T) {
	d := NewDefault(gpu.A100)
	k := testKernel("implicit_gemm_128x128", 1e10, 1e9, 1e7)
	base := d.BaseKernelTime(k)
	rnd := rand.New(rand.NewSource(5))
	var sum float64
	const n = 4000
	for i := 0; i < n; i++ {
		sum += d.KernelTime(k, rnd)
	}
	avg := sum / n
	if math.Abs(avg-base)/base > 0.01 {
		t.Fatalf("noisy average %v deviates from base %v", avg, base)
	}
}

func TestWallTimePipelineOverlap(t *testing.T) {
	d := NewDefault(gpu.A100)
	durations := []float64{1e-3, 1e-3, 1e-3, 1e-3}
	wall := d.WallTime(durations)
	var sum float64
	for _, t := range durations {
		sum += t
	}
	floor := d.Config().BatchFloorUS * 1e-6
	if wall >= sum+floor {
		t.Fatalf("wall %v should be below serialized sum %v (pipelining)", wall, sum+floor)
	}
	if wall <= sum/2 {
		t.Fatalf("wall %v implausibly small vs sum %v", wall, sum)
	}
}

func TestWallTimeFloor(t *testing.T) {
	d := NewDefault(gpu.A100)
	if wall := d.WallTime(nil); wall != d.Config().BatchFloorUS*1e-6 {
		t.Fatalf("empty wall = %v", wall)
	}
	// Tiny kernels can never make the batch faster than the CPU floor.
	tiny := make([]float64, 100)
	for i := range tiny {
		tiny[i] = 1e-7
	}
	if wall := d.WallTime(tiny); wall < d.Config().BatchFloorUS*1e-6 {
		t.Fatalf("wall %v below scheduling floor", wall)
	}
}

func TestFitsMemory(t *testing.T) {
	net := zoo.MustResNet(50)
	if err := net.Infer(512); err != nil {
		t.Fatal(err)
	}
	if !NewDefault(gpu.A100).FitsMemory(net) {
		t.Fatal("resnet50@512 should fit in 40 GB")
	}
	if NewDefault(gpu.QuadroP620).FitsMemory(net) {
		t.Fatal("resnet50@512 should not fit in 2 GB")
	}
}

func TestMemoryBoundConsistency(t *testing.T) {
	d := NewDefault(gpu.A100)
	// Pure data movement: memory bound by construction.
	mem := testKernel("elementwise_relu", 1, 1e9, 1e8)
	if !d.MemoryBound(mem) {
		t.Fatal("byte-heavy kernel should be memory bound")
	}
	// Enormous arithmetic intensity: compute bound.
	comp := testKernel("sgemm_256x128", 1e13, 1e6, 1e6)
	if d.MemoryBound(comp) {
		t.Fatal("FLOP-heavy kernel should be compute bound")
	}
}

func TestConfigDefaults(t *testing.T) {
	d := New(gpu.A100, Config{})
	cfg := d.Config()
	def := DefaultConfig()
	if cfg != def {
		t.Fatalf("zero config should resolve to defaults: %+v vs %+v", cfg, def)
	}
	// Partial overrides keep the rest at defaults.
	d2 := New(gpu.A100, Config{NoiseSigma: 0.5})
	if d2.Config().NoiseSigma != 0.5 || d2.Config().KernelOverheadUS != def.KernelOverheadUS {
		t.Fatalf("partial override mishandled: %+v", d2.Config())
	}
}

func TestArchFactorsOrdered(t *testing.T) {
	// Newer architectures must not be less efficient than older ones.
	if archComputeFactor("Ampere") < archComputeFactor("Pascal") {
		t.Fatal("compute factors inverted")
	}
	if archMemFactor("Ampere") < archMemFactor("Pascal") {
		t.Fatal("memory factors inverted")
	}
	if archSensitivity("Ampere") != 0 {
		t.Fatal("reference architecture should have zero sensitivity")
	}
}

func TestHash01Range(t *testing.T) {
	d := NewDefault(gpu.A100)
	f := func(s string) bool {
		v := d.hash01(s)
		return v >= 0 && v < 1
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(13))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestKernelTimesLinearWithinFamily verifies the central dataset property
// the paper's models rely on (O5): within a kernel family, scaling the
// problem k× scales time roughly k× (modulo the bounded geometry and
// curvature modulations).
func TestKernelTimesLinearWithinFamily(t *testing.T) {
	d := NewDefault(gpu.A100)
	base := testKernel("implicit_gemm_128x128", 2e9, 2e8, 2e6)
	t1 := d.BaseKernelTime(base)
	for _, k := range []int64{2, 4, 8} {
		scaled := testKernel("implicit_gemm_128x128", 2e9*k, 2e8*k, 2e6*k)
		tk := d.BaseKernelTime(scaled)
		ratio := tk / (t1 * float64(k))
		if ratio < 0.5 || ratio > 2.0 {
			t.Fatalf("scaling %d×: time ratio %v strays too far from linear", k, ratio)
		}
	}
}

var sinkTime float64

func BenchmarkBaseKernelTime(b *testing.B) {
	d := NewDefault(gpu.A100)
	k := testKernel("winograd_gemm_128x128", 1e9, 1e8, 1e6)
	for i := 0; i < b.N; i++ {
		sinkTime = d.BaseKernelTime(k)
	}
}
