// Package units defines the named quantity types the model layer is written
// in: Seconds for measured and predicted durations, FLOPs for operation
// counts, and Bytes for data volumes.
//
// The point of the named types is the compile-time unit boundary they create.
// Inside the model layer (internal/core, internal/dataset) every duration,
// FLOP count and byte count carries its unit in the type, so seconds can
// never be silently added to FLOPs and a refactor can never swap two
// same-typed float64 arguments without the compiler noticing. Crossing into
// unitless math (internal/regression's OLS machinery works on plain float64
// regressors) requires an explicit conversion — float64(sec), float64(fl) —
// which makes every unit boundary visible and lintable: the unitsafe analyzer
// in internal/analysis flags expressions that strip two *different* units and
// mix the raw values in one arithmetic expression.
//
// The device/simulation layer below the dataset (internal/dnn,
// internal/kernels, internal/profiler, internal/sim) deliberately stays on
// raw int64/float64: those packages compute structural quantities that get
// their unit meaning only when ingested into dataset records.
package units

import (
	"fmt"
	"math"
)

// Seconds is a duration in seconds. All model predictions and all measured
// execution times in dataset records carry this type.
type Seconds float64

// Float64 returns the raw value, the explicit exit into unitless math.
func (s Seconds) Float64() float64 { return float64(s) }

// Micros returns the duration in microseconds (kernel durations are
// conventionally reported in µs).
func (s Seconds) Micros() float64 { return float64(s) * 1e6 }

// IsNaN reports whether the duration is NaN.
func (s Seconds) IsNaN() bool { return math.IsNaN(float64(s)) }

// String implements fmt.Stringer.
func (s Seconds) String() string { return fmt.Sprintf("%gs", float64(s)) }

// FLOPs is a count of floating-point operations.
type FLOPs int64

// Float64 returns the count as a regression-ready float64.
func (f FLOPs) Float64() float64 { return float64(f) }

// Giga returns the count in GFLOPs.
func (f FLOPs) Giga() float64 { return float64(f) / 1e9 }

// String implements fmt.Stringer.
func (f FLOPs) String() string { return fmt.Sprintf("%dflop", int64(f)) }

// Bytes is a data volume in bytes.
type Bytes int64

// Float64 returns the volume as a regression-ready float64.
func (b Bytes) Float64() float64 { return float64(b) }

// Mega returns the volume in MB (10^6 bytes).
func (b Bytes) Mega() float64 { return float64(b) / 1e6 }

// String implements fmt.Stringer.
func (b Bytes) String() string { return fmt.Sprintf("%dB", int64(b)) }
