package units

import (
	"encoding/json"
	"testing"
)

// The named types must marshal exactly like their underlying types: models
// serialized before the unit migration must load unchanged after it.
func TestJSONCompatibility(t *testing.T) {
	type rec struct {
		T Seconds `json:"t"`
		F FLOPs   `json:"f"`
		B Bytes   `json:"b"`
	}
	raw, err := json.Marshal(rec{T: 0.25, F: 1 << 30, B: 4096})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"t":0.25,"f":1073741824,"b":4096}`
	if string(raw) != want {
		t.Fatalf("marshal = %s, want %s", raw, want)
	}
	var back rec
	if err := json.Unmarshal([]byte(want), &back); err != nil {
		t.Fatal(err)
	}
	if back.T != 0.25 || back.F != 1<<30 || back.B != 4096 {
		t.Fatalf("round trip = %+v", back)
	}
}

func TestConversions(t *testing.T) {
	if got := Seconds(2e-6).Micros(); got != 2 {
		t.Fatalf("Micros = %v", got)
	}
	if got := FLOPs(3e9).Giga(); got != 3 {
		t.Fatalf("Giga = %v", got)
	}
	if got := Bytes(5e6).Mega(); got != 5 {
		t.Fatalf("Mega = %v", got)
	}
	if Seconds(1).String() != "1s" || FLOPs(2).String() != "2flop" || Bytes(3).String() != "3B" {
		t.Fatal("String formatting changed")
	}
}
