package zoo

import (
	"fmt"

	"repro/internal/dnn"
)

// AlexNet builds the classic five-conv/three-FC AlexNet at the given input
// resolution (224 is standard; the torchvision implementation).
func AlexNet(res int) *dnn.Network {
	if res == 0 {
		res = 224
	}
	name := "alexnet"
	if res != 224 {
		name = fmt.Sprintf("alexnet_%d", res)
	}
	n := dnn.New(name, "AlexNet", dnn.TaskImageClassification, imageInput(res))

	x := n.Conv(dnn.NetworkInput, 3, 64, 11, 4, 2)
	x = n.ReLU(x)
	x = n.MaxPool(x, 3, 2, 0)
	x = n.Conv(x, 64, 192, 5, 1, 2)
	x = n.ReLU(x)
	x = n.MaxPool(x, 3, 2, 0)
	x = n.Conv(x, 192, 384, 3, 1, 1)
	x = n.ReLU(x)
	x = n.Conv(x, 384, 256, 3, 1, 1)
	x = n.ReLU(x)
	x = n.Conv(x, 256, 256, 3, 1, 1)
	x = n.ReLU(x)
	x = n.MaxPool(x, 3, 2, 0)

	// torchvision adaptive-pools to 6×6 before the classifier; we reproduce
	// that with a global-average-free equivalent only when the feature map
	// is already larger than 6×6.
	side := alexNetFeatureSide(res)
	if side > 6 {
		k := side / 6
		x = n.AvgPool(x, k, k, 0)
		side = (side-k)/k + 1
	}
	x = n.Flatten(x)
	feat := 256 * side * side
	x = n.Dropout(x)
	x = n.Linear(x, feat, 4096)
	x = n.ReLU(x)
	x = n.Dropout(x)
	x = n.Linear(x, 4096, 4096)
	x = n.ReLU(x)
	n.Linear(x, 4096, numClasses)
	return n
}

// alexNetFeatureSide computes the spatial side after the conv trunk.
func alexNetFeatureSide(res int) int {
	s := (res+2*2-11)/4 + 1 // conv1
	s = (s-3)/2 + 1         // pool1
	s = (s + 2*2 - 5) + 1   // conv2
	s = (s-3)/2 + 1         // pool2
	// conv3..5 are stride-1 pad-1 3×3: size-preserving.
	s = (s-3)/2 + 1 // pool3
	return s
}

// SqueezeNet builds SqueezeNet v1.0 or v1.1 at the given resolution.
func SqueezeNet(version string, res int) *dnn.Network {
	if res == 0 {
		res = 224
	}
	name := "squeezenet" + version
	if res != 224 {
		name = fmt.Sprintf("%s_%d", name, res)
	}
	n := dnn.New(name, "SqueezeNet", dnn.TaskImageClassification, imageInput(res))

	var x int
	fire := func(in, inC, squeeze, expand int) (int, int) {
		s := n.Conv(in, inC, squeeze, 1, 1, 0)
		s = n.ReLU(s)
		e1 := n.Conv(s, squeeze, expand, 1, 1, 0)
		e1 = n.ReLU(e1)
		e3 := n.Conv(s, squeeze, expand, 3, 1, 1)
		e3 = n.ReLU(e3)
		return n.Concat(e1, e3), 2 * expand
	}

	var c int
	if version == "1.0" {
		x = n.Conv(dnn.NetworkInput, 3, 96, 7, 2, 0)
		x = n.ReLU(x)
		x = n.MaxPool(x, 3, 2, 0)
		x, c = fire(x, 96, 16, 64)
		x, c = fire(x, c, 16, 64)
		x, c = fire(x, c, 32, 128)
		x = n.MaxPool(x, 3, 2, 0)
		x, c = fire(x, c, 32, 128)
		x, c = fire(x, c, 48, 192)
		x, c = fire(x, c, 48, 192)
		x, c = fire(x, c, 64, 256)
		x = n.MaxPool(x, 3, 2, 0)
		x, c = fire(x, c, 64, 256)
	} else { // 1.1
		x = n.Conv(dnn.NetworkInput, 3, 64, 3, 2, 0)
		x = n.ReLU(x)
		x = n.MaxPool(x, 3, 2, 0)
		x, c = fire(x, 64, 16, 64)
		x, c = fire(x, c, 16, 64)
		x = n.MaxPool(x, 3, 2, 0)
		x, c = fire(x, c, 32, 128)
		x, c = fire(x, c, 32, 128)
		x = n.MaxPool(x, 3, 2, 0)
		x, c = fire(x, c, 48, 192)
		x, c = fire(x, c, 48, 192)
		x, c = fire(x, c, 64, 256)
		x, c = fire(x, c, 64, 256)
	}

	x = n.Dropout(x)
	x = n.Conv(x, c, numClasses, 1, 1, 0)
	x = n.ReLU(x)
	x = n.GlobalAvgPool(x)
	n.Flatten(x)
	return n
}
