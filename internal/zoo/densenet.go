package zoo

import (
	"fmt"

	"repro/internal/dnn"
)

// DenseNetConfig parameterizes a DenseNet.
type DenseNetConfig struct {
	// Blocks is the dense-layer count of each dense block. DenseNet-121 is
	// {6, 12, 24, 16}.
	Blocks []int
	// GrowthRate is the channel increment per dense layer (32 for most
	// standard DenseNets, 48 for DenseNet-161).
	GrowthRate int
	// InitChannels is the stem output width (2×growth by convention).
	InitChannels int
	// Resolution is the input image side (224 by default).
	Resolution int
}

// DenseNet builds a DenseNet from the configuration.
func DenseNet(name string, cfg DenseNetConfig) *dnn.Network {
	if cfg.Resolution == 0 {
		cfg.Resolution = 224
	}
	if cfg.GrowthRate == 0 {
		cfg.GrowthRate = 32
	}
	if cfg.InitChannels == 0 {
		cfg.InitChannels = 2 * cfg.GrowthRate
	}
	n := dnn.New(name, "DenseNet", dnn.TaskImageClassification, imageInput(cfg.Resolution))

	// Stem.
	x := n.Conv(dnn.NetworkInput, 3, cfg.InitChannels, 7, 2, 3)
	x = n.BN(x)
	x = n.ReLU(x)
	x = n.MaxPool(x, 3, 2, 1)

	c := cfg.InitChannels
	for bi, layers := range cfg.Blocks {
		for l := 0; l < layers; l++ {
			x, c = denseLayer(n, x, c, cfg.GrowthRate)
		}
		if bi != len(cfg.Blocks)-1 {
			// Transition: BN, ReLU, 1×1 conv halving channels, 2×2 avg pool.
			t := n.BN(x)
			t = n.ReLU(t)
			outC := c / 2
			t = n.Conv(t, c, outC, 1, 1, 0)
			x = n.AvgPool(t, 2, 2, 0)
			c = outC
		}
	}

	x = n.BN(x)
	x = n.ReLU(x)
	x = n.GlobalAvgPool(x)
	x = n.Flatten(x)
	n.Linear(x, c, numClasses)
	return n
}

// denseLayer appends one BN-ReLU-1×1-BN-ReLU-3×3 dense layer and the concat
// that accumulates its growth channels onto the running feature map.
func denseLayer(n *dnn.Network, x, c, growth int) (int, int) {
	bottleneck := 4 * growth
	y := n.BN(x)
	y = n.ReLU(y)
	y = n.Conv(y, c, bottleneck, 1, 1, 0)
	y = n.BN(y)
	y = n.ReLU(y)
	y = n.Conv(y, bottleneck, growth, 3, 1, 1)
	out := n.Concat(x, y)
	return out, c + growth
}

// standardDenseNets maps depth names to configurations.
var standardDenseNets = map[int]DenseNetConfig{
	121: {Blocks: []int{6, 12, 24, 16}, GrowthRate: 32},
	161: {Blocks: []int{6, 12, 36, 24}, GrowthRate: 48, InitChannels: 96},
	169: {Blocks: []int{6, 12, 32, 32}, GrowthRate: 32},
	201: {Blocks: []int{6, 12, 48, 32}, GrowthRate: 32},
}

// StandardDenseNet builds densenet121/161/169/201.
func StandardDenseNet(depth int) (*dnn.Network, error) {
	cfg, ok := standardDenseNets[depth]
	if !ok {
		return nil, fmt.Errorf("zoo: no standard DenseNet of depth %d", depth)
	}
	cfg.Blocks = append([]int(nil), cfg.Blocks...)
	return DenseNet(fmt.Sprintf("densenet%d", depth), cfg), nil
}

// MustDenseNet is StandardDenseNet that panics on unknown depth.
func MustDenseNet(depth int) *dnn.Network {
	n, err := StandardDenseNet(depth)
	if err != nil {
		panic(err)
	}
	return n
}
