package zoo

import (
	"fmt"

	"repro/internal/dnn"
)

// inceptionSpec gives the branch widths of one GoogLeNet inception module:
// 1×1, 3×3-reduce/3×3, 5×5-reduce/5×5, pool-proj.
type inceptionSpec struct {
	c1, c3r, c3, c5r, c5, pp int
}

// googLeNetModules is the canonical inception table (3a…5b).
var googLeNetModules = []struct {
	spec inceptionSpec
	pool bool // max-pool after this module
}{
	{inceptionSpec{64, 96, 128, 16, 32, 32}, false},     // 3a
	{inceptionSpec{128, 128, 192, 32, 96, 64}, true},    // 3b
	{inceptionSpec{192, 96, 208, 16, 48, 64}, false},    // 4a
	{inceptionSpec{160, 112, 224, 24, 64, 64}, false},   // 4b
	{inceptionSpec{128, 128, 256, 24, 64, 64}, false},   // 4c
	{inceptionSpec{112, 144, 288, 32, 64, 64}, false},   // 4d
	{inceptionSpec{256, 160, 320, 32, 128, 128}, true},  // 4e
	{inceptionSpec{256, 160, 320, 32, 128, 128}, false}, // 5a
	{inceptionSpec{384, 192, 384, 48, 128, 128}, false}, // 5b
}

// GoogLeNet builds the torchvision GoogLeNet (with BN, without aux heads) at
// the given resolution.
func GoogLeNet(res int) *dnn.Network {
	if res == 0 {
		res = 224
	}
	name := "googlenet"
	if res != 224 {
		name = fmt.Sprintf("googlenet_%d", res)
	}
	n := dnn.New(name, "GoogLeNet", dnn.TaskImageClassification, imageInput(res))

	convBN := func(in, cin, cout, k, stride, pad int) int {
		x := n.Conv(in, cin, cout, k, stride, pad)
		x = n.BN(x)
		return n.ReLU(x)
	}

	x := convBN(dnn.NetworkInput, 3, 64, 7, 2, 3)
	x = n.MaxPool(x, 3, 2, 1)
	x = convBN(x, 64, 64, 1, 1, 0)
	x = convBN(x, 64, 192, 3, 1, 1)
	x = n.MaxPool(x, 3, 2, 1)

	c := 192
	for _, m := range googLeNetModules {
		s := m.spec
		b1 := convBN(x, c, s.c1, 1, 1, 0)
		b2 := convBN(x, c, s.c3r, 1, 1, 0)
		b2 = convBN(b2, s.c3r, s.c3, 3, 1, 1)
		b3 := convBN(x, c, s.c5r, 1, 1, 0)
		b3 = convBN(b3, s.c5r, s.c5, 3, 1, 1) // torchvision uses 3×3 here
		b4 := n.MaxPool(x, 3, 1, 1)
		b4 = convBN(b4, c, s.pp, 1, 1, 0)
		x = n.Concat(b1, b2, b3, b4)
		c = s.c1 + s.c3 + s.c5 + s.pp
		if m.pool {
			x = n.MaxPool(x, 3, 2, 1)
		}
	}

	x = n.GlobalAvgPool(x)
	x = n.Flatten(x)
	x = n.Dropout(x)
	n.Linear(x, c, numClasses)
	return n
}
