package zoo

import (
	"fmt"

	"repro/internal/dnn"
)

// invertedResidualSetting is MobileNetV2's (expansion, channels, repeats,
// stride) block table.
type invertedResidualSetting struct {
	t, c, n, s int
}

var mobileNetV2Settings = []invertedResidualSetting{
	{1, 16, 1, 1},
	{6, 24, 2, 2},
	{6, 32, 3, 2},
	{6, 64, 4, 2},
	{6, 96, 3, 1},
	{6, 160, 3, 2},
	{6, 320, 1, 1},
}

// MobileNetV2Config parameterizes a MobileNetV2.
type MobileNetV2Config struct {
	// WidthMult scales every channel count (1.0 is the standard model).
	WidthMult float64
	// Resolution is the input image side (224 by default).
	Resolution int
	// ExpandOverride replaces the per-block expansion factor of every block
	// except the first (which stays at 1); zero keeps the standard table
	// value of 6.
	ExpandOverride int
}

// MobileNetV2 builds a MobileNetV2 from the configuration.
func MobileNetV2(name string, cfg MobileNetV2Config) *dnn.Network {
	if cfg.WidthMult == 0 {
		cfg.WidthMult = 1.0
	}
	if cfg.Resolution == 0 {
		cfg.Resolution = 224
	}
	n := dnn.New(name, "MobileNetV2", dnn.TaskImageClassification, imageInput(cfg.Resolution))

	scale := func(c int) int {
		v := int(float64(c)*cfg.WidthMult+4) / 8 * 8
		if v < 8 {
			v = 8
		}
		return v
	}

	inC := scale(32)
	x := n.Conv(dnn.NetworkInput, 3, inC, 3, 2, 1)
	x = n.BN(x)
	x = n.ReLU6(x)

	for _, set := range mobileNetV2Settings {
		outC := scale(set.c)
		expand := set.t
		if cfg.ExpandOverride > 0 && expand != 1 {
			expand = cfg.ExpandOverride
		}
		for i := 0; i < set.n; i++ {
			stride := 1
			if i == 0 {
				stride = set.s
			}
			x, inC = invertedResidual(n, x, inC, outC, expand, stride)
		}
	}

	// torchvision keeps the final 1280 unscaled for width ≤ 1.0.
	lastC := 1280
	if cfg.WidthMult > 1.0 {
		lastC = scale(1280)
	}
	x = n.Conv(x, inC, lastC, 1, 1, 0)
	x = n.BN(x)
	x = n.ReLU6(x)
	x = n.GlobalAvgPool(x)
	x = n.Flatten(x)
	x = n.Dropout(x)
	n.Linear(x, lastC, numClasses)
	return n
}

// invertedResidual appends one MobileNetV2 block: 1×1 expand, 3×3 depthwise,
// 1×1 project, with a residual when shapes permit.
func invertedResidual(n *dnn.Network, x, inC, outC, expand, stride int) (int, int) {
	identity := x
	y := x
	hidden := inC * expand
	if expand != 1 {
		y = n.Conv(y, inC, hidden, 1, 1, 0)
		y = n.BN(y)
		y = n.ReLU6(y)
	}
	y = n.DWConv(y, hidden, 3, stride, 1)
	y = n.BN(y)
	y = n.ReLU6(y)
	y = n.Conv(y, hidden, outC, 1, 1, 0)
	y = n.BN(y)
	if stride == 1 && inC == outC {
		y = n.Residual(y, identity)
	}
	return y, outC
}

// StandardMobileNetV2 builds the width-1.0, 224-resolution model.
func StandardMobileNetV2() *dnn.Network {
	return MobileNetV2("mobilenet_v2", MobileNetV2Config{})
}

// mobileNetVariantName renders the conventional "mobilenet_v2_075_192" style
// variant names.
func mobileNetVariantName(width float64, res int) string {
	return fmt.Sprintf("mobilenet_v2_%03d_%d", int(width*100+0.5), res)
}
