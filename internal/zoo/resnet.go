// Package zoo constructs the DNN workloads of the paper's dataset: the
// standard TorchVision image-classification families (ResNet, VGG, DenseNet,
// MobileNetV2, ShuffleNet v1, AlexNet, SqueezeNet, GoogLeNet), the
// non-standard ResNet/VGG variants used in Figure 4, the custom ResNet depths
// (44/62/77) of the case studies, and HuggingFace-style text-classification
// transformers. Full() deterministically generates the 646-network zoo the
// paper's dataset is built from.
package zoo

import (
	"fmt"

	"repro/internal/dnn"
)

// numClasses is the ILSVRC2012 class count used by every image classifier.
const numClasses = 1000

// imageInput returns the per-sample input shape for a given resolution.
func imageInput(res int) dnn.Shape { return dnn.Shape{3, res, res} }

// ResNetConfig parameterizes a (possibly non-standard) ResNet.
type ResNetConfig struct {
	// Blocks is the residual block count of each of the four stages.
	Blocks [4]int
	// Bottleneck selects 1×1/3×3/1×1 bottleneck blocks (ResNet-50 style)
	// instead of two-3×3 basic blocks (ResNet-18 style).
	Bottleneck bool
	// BaseWidth is the channel count of the first stage (64 for standard
	// ResNets).
	BaseWidth int
	// Groups is the group count of the bottleneck 3×3 convolutions
	// (ResNeXt's cardinality; 1 for plain ResNets).
	Groups int
	// WidthPerGroup widens the bottleneck inner convolutions: torchvision's
	// base_width (64 for ResNet, 4 for ResNeXt-32x4d, 128 for Wide ResNets).
	WidthPerGroup int
	// Resolution is the input image side (224 for standard ResNets).
	Resolution int
}

// Depth returns the conventional layer-count name of the configuration
// (counting convolutions and the final FC, as in "ResNet-50").
func (c ResNetConfig) Depth() int {
	sum := c.Blocks[0] + c.Blocks[1] + c.Blocks[2] + c.Blocks[3]
	if c.Bottleneck {
		return 3*sum + 2
	}
	return 2*sum + 2
}

// ResNet builds a ResNet from the given configuration.
func ResNet(name string, cfg ResNetConfig) *dnn.Network {
	if cfg.BaseWidth == 0 {
		cfg.BaseWidth = 64
	}
	if cfg.Groups == 0 {
		cfg.Groups = 1
	}
	if cfg.WidthPerGroup == 0 {
		cfg.WidthPerGroup = 64
	}
	if cfg.Resolution == 0 {
		cfg.Resolution = 224
	}
	family := "ResNet"
	if cfg.Groups > 1 {
		family = "ResNeXt"
	}
	n := dnn.New(name, family, dnn.TaskImageClassification, imageInput(cfg.Resolution))

	// Stem: 7×7/2 conv, BN, ReLU, 3×3/2 max pool.
	x := n.Conv(dnn.NetworkInput, 3, cfg.BaseWidth, 7, 2, 3)
	x = n.BN(x)
	x = n.ReLU(x)
	x = n.MaxPool(x, 3, 2, 1)

	expansion := 1
	if cfg.Bottleneck {
		expansion = 4
	}
	inC := cfg.BaseWidth
	for stage := 0; stage < 4; stage++ {
		planes := cfg.BaseWidth << stage
		for b := 0; b < cfg.Blocks[stage]; b++ {
			stride := 1
			if stage > 0 && b == 0 {
				stride = 2
			}
			if cfg.Bottleneck {
				x, inC = bottleneckBlock(n, x, inC, planes, stride, expansion,
					cfg.Groups, cfg.WidthPerGroup)
			} else {
				x, inC = basicBlock(n, x, inC, planes, stride)
			}
		}
	}

	x = n.GlobalAvgPool(x)
	x = n.Flatten(x)
	n.Linear(x, inC, numClasses)
	return n
}

// basicBlock appends a two-3×3-conv residual block and returns the new
// feature index and channel count.
func basicBlock(n *dnn.Network, x, inC, planes, stride int) (int, int) {
	identity := x
	y := n.Conv(x, inC, planes, 3, stride, 1)
	y = n.BN(y)
	y = n.ReLU(y)
	y = n.Conv(y, planes, planes, 3, 1, 1)
	y = n.BN(y)
	if stride != 1 || inC != planes {
		identity = n.Conv(x, inC, planes, 1, stride, 0)
		identity = n.BN(identity)
	}
	y = n.Residual(y, identity)
	y = n.ReLU(y)
	return y, planes
}

// bottleneckBlock appends a 1×1/3×3/1×1 bottleneck residual block; groups
// and widthPerGroup implement the ResNeXt/Wide-ResNet inner widening
// (torchvision's width = planes · widthPerGroup/64 · groups).
func bottleneckBlock(n *dnn.Network, x, inC, planes, stride, expansion, groups, widthPerGroup int) (int, int) {
	outC := planes * expansion
	width := planes * widthPerGroup / 64 * groups
	identity := x
	y := n.Conv(x, inC, width, 1, 1, 0)
	y = n.BN(y)
	y = n.ReLU(y)
	y = n.GroupConv(y, width, width, 3, stride, 1, groups)
	y = n.BN(y)
	y = n.ReLU(y)
	y = n.Conv(y, width, outC, 1, 1, 0)
	y = n.BN(y)
	if stride != 1 || inC != outC {
		identity = n.Conv(x, inC, outC, 1, stride, 0)
		identity = n.BN(identity)
	}
	y = n.Residual(y, identity)
	y = n.ReLU(y)
	return y, outC
}

// standardResNetBlocks maps the canonical depth names to block counts.
var standardResNetBlocks = map[int]struct {
	blocks     [4]int
	bottleneck bool
}{
	18:  {[4]int{2, 2, 2, 2}, false},
	34:  {[4]int{3, 4, 6, 3}, false},
	50:  {[4]int{3, 4, 6, 3}, true},
	101: {[4]int{3, 4, 23, 3}, true},
	152: {[4]int{3, 8, 36, 3}, true},
	// Non-standard depths used in the paper's case studies (built by
	// adding/removing blocks from the standard design, §4 O2).
	44: {[4]int{5, 5, 6, 5}, false}, // 2·21+2
	62: {[4]int{3, 4, 9, 4}, true},  // 3·20+2
	77: {[4]int{3, 6, 12, 4}, true}, // 3·25+2
	26: {[4]int{3, 3, 3, 3}, false}, // 2·12+2
	89: {[4]int{3, 6, 16, 4}, true}, // 3·29+2
}

// StandardResNet builds one of the canonical or paper-specific depths
// ("resnet18" … "resnet152", "resnet44", "resnet62", "resnet77").
func StandardResNet(depth int) (*dnn.Network, error) {
	cfg, ok := standardResNetBlocks[depth]
	if !ok {
		return nil, fmt.Errorf("zoo: no standard ResNet of depth %d", depth)
	}
	return ResNet(fmt.Sprintf("resnet%d", depth), ResNetConfig{
		Blocks: cfg.blocks, Bottleneck: cfg.bottleneck,
	}), nil
}

// MustResNet is StandardResNet that panics on unknown depth; for use in
// examples and experiment tables where depths are compile-time constants.
func MustResNet(depth int) *dnn.Network {
	n, err := StandardResNet(depth)
	if err != nil {
		panic(err)
	}
	return n
}

// ResNeXt builds the canonical ResNeXt variants ("50_32x4d", "101_32x8d").
func ResNeXt(variant string) (*dnn.Network, error) {
	switch variant {
	case "50_32x4d":
		return ResNet("resnext50_32x4d", ResNetConfig{
			Blocks: [4]int{3, 4, 6, 3}, Bottleneck: true, Groups: 32, WidthPerGroup: 4,
		}), nil
	case "101_32x8d":
		return ResNet("resnext101_32x8d", ResNetConfig{
			Blocks: [4]int{3, 4, 23, 3}, Bottleneck: true, Groups: 32, WidthPerGroup: 8,
		}), nil
	}
	return nil, fmt.Errorf("zoo: unknown ResNeXt variant %q", variant)
}

// WideResNet builds wide_resnet50_2 / wide_resnet101_2 (doubled bottleneck
// inner width).
func WideResNet(depth int) (*dnn.Network, error) {
	switch depth {
	case 50:
		return ResNet("wide_resnet50_2", ResNetConfig{
			Blocks: [4]int{3, 4, 6, 3}, Bottleneck: true, WidthPerGroup: 128,
		}), nil
	case 101:
		return ResNet("wide_resnet101_2", ResNetConfig{
			Blocks: [4]int{3, 4, 23, 3}, Bottleneck: true, WidthPerGroup: 128,
		}), nil
	}
	return nil, fmt.Errorf("zoo: no wide ResNet of depth %d", depth)
}
