package zoo

import (
	"fmt"

	"repro/internal/dnn"
)

// shuffleNetStageChannels maps the group count to the stage-2 output width of
// ShuffleNet v1 (the original paper's Table 1); stages 3 and 4 double it.
var shuffleNetStageChannels = map[int]int{
	1: 144, 2: 200, 3: 240, 4: 272, 8: 384,
}

// ShuffleNetV1Config parameterizes a ShuffleNet v1.
type ShuffleNetV1Config struct {
	// Groups is the group count of the grouped 1×1 convolutions (3 in the
	// flagship model).
	Groups int
	// Scale multiplies all channel counts (the "0.5×", "1.5×" variants).
	Scale float64
	// Resolution is the input image side (224 by default).
	Resolution int
}

// ShuffleNetV1 builds a ShuffleNet v1 from the configuration.
func ShuffleNetV1(name string, cfg ShuffleNetV1Config) *dnn.Network {
	if cfg.Groups == 0 {
		cfg.Groups = 3
	}
	if cfg.Scale == 0 {
		cfg.Scale = 1.0
	}
	if cfg.Resolution == 0 {
		cfg.Resolution = 224
	}
	base, ok := shuffleNetStageChannels[cfg.Groups]
	if !ok {
		panic(fmt.Sprintf("zoo: ShuffleNet v1 has no configuration for %d groups", cfg.Groups))
	}
	n := dnn.New(name, "ShuffleNetV1", dnn.TaskImageClassification, imageInput(cfg.Resolution))

	g := cfg.Groups
	scale := func(c int) int {
		v := int(float64(c)*cfg.Scale + 0.5)
		// Keep widths divisible by 4·groups so grouped convs and the
		// bottleneck quarter-width stay integral.
		q := 4 * g
		v = (v + q - 1) / q * q
		return v
	}

	inC := 24
	x := n.Conv(dnn.NetworkInput, 3, inC, 3, 2, 1)
	x = n.BN(x)
	x = n.ReLU(x)
	x = n.MaxPool(x, 3, 2, 1)

	repeats := []int{4, 8, 4}
	for stage := 0; stage < 3; stage++ {
		outC := scale(base << stage)
		for b := 0; b < repeats[stage]; b++ {
			stride := 1
			if b == 0 {
				stride = 2
			}
			// The very first unit uses ungrouped 1×1 (input is only 24ch).
			firstGroups := g
			if stage == 0 && b == 0 {
				firstGroups = 1
			}
			x, inC = shuffleUnit(n, x, inC, outC, g, firstGroups, stride)
		}
	}

	x = n.GlobalAvgPool(x)
	x = n.Flatten(x)
	n.Linear(x, inC, numClasses)
	return n
}

// shuffleUnit appends one ShuffleNet unit: grouped 1×1 reduce, channel
// shuffle, 3×3 depthwise, grouped 1×1 expand; stride-2 units concatenate an
// average-pooled shortcut, stride-1 units add the identity.
func shuffleUnit(n *dnn.Network, x, inC, outC, groups, firstGroups, stride int) (int, int) {
	branchOut := outC
	if stride == 2 {
		branchOut = outC - inC // concat shortcut supplies the rest
		if branchOut <= 0 {
			branchOut = outC
		}
	}
	mid := outC / 4
	if mid < groups {
		mid = groups
	}
	mid = mid / groups * groups

	y := n.GroupConv(x, inC, mid, 1, 1, 0, firstGroups)
	y = n.BN(y)
	y = n.ReLU(y)
	y = n.ChannelShuffle(y, groups)
	y = n.DWConv(y, mid, 3, stride, 1)
	y = n.BN(y)
	y = n.GroupConv(y, mid, branchOut, 1, 1, 0, groups)
	y = n.BN(y)

	if stride == 2 {
		short := n.AvgPool(x, 3, 2, 1)
		out := n.Concat(short, y)
		out = n.ReLU(out)
		return out, inC + branchOut
	}
	out := n.Residual(y, x)
	out = n.ReLU(out)
	return out, outC
}

// StandardShuffleNetV1 builds the flagship g=3, 1.0× model.
func StandardShuffleNetV1() *dnn.Network {
	return ShuffleNetV1("shufflenet_v1", ShuffleNetV1Config{Groups: 3, Scale: 1.0})
}
