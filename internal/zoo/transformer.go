package zoo

import (
	"fmt"

	"repro/internal/dnn"
)

// TransformerConfig parameterizes a BERT-style text-classification encoder,
// matching the HuggingFace text-classification group the paper extends the
// KW model with (§5.4).
type TransformerConfig struct {
	// Layers is the encoder block count (12 for BERT-base).
	Layers int
	// Hidden is the model width (768 for BERT-base).
	Hidden int
	// Heads is the attention head count (Hidden must be divisible by it).
	Heads int
	// FFNMult is the feed-forward expansion (4 for BERT).
	FFNMult int
	// SeqLen is the token sequence length per sample.
	SeqLen int
	// Vocab is the tokenizer vocabulary size (30522 for BERT).
	Vocab int
	// Classes is the classification label count.
	Classes int
}

// Transformer builds a text-classification encoder from the configuration.
func Transformer(name string, cfg TransformerConfig) *dnn.Network {
	if cfg.FFNMult == 0 {
		cfg.FFNMult = 4
	}
	if cfg.Vocab == 0 {
		cfg.Vocab = 30522
	}
	if cfg.Classes == 0 {
		cfg.Classes = 2
	}
	if cfg.Heads == 0 {
		cfg.Heads = cfg.Hidden / 64
	}
	if cfg.Hidden%cfg.Heads != 0 {
		panic(fmt.Sprintf("zoo: transformer %q: hidden %d not divisible by heads %d",
			name, cfg.Hidden, cfg.Heads))
	}
	n := dnn.New(name, "Transformer", dnn.TaskTextClassification, dnn.Shape{cfg.SeqLen})

	h := cfg.Hidden
	x := n.Embedding(dnn.NetworkInput, cfg.Vocab, h)
	x = n.LN(x)
	x = n.Dropout(x)

	for l := 0; l < cfg.Layers; l++ {
		// Self-attention.
		q := n.Linear(x, h, h)
		k := n.Linear(x, h, h)
		v := n.Linear(x, h, h)
		scores := n.MatMul(q, k, cfg.Heads, true)
		scores = n.Softmax(scores)
		ctx := n.MatMul(scores, v, cfg.Heads, false)
		attnOut := n.Linear(ctx, h, h)
		attnOut = n.Dropout(attnOut)
		x = n.Residual(attnOut, x)
		x = n.LN(x)

		// Feed-forward.
		ff := n.Linear(x, h, cfg.FFNMult*h)
		ff = n.GELU(ff)
		ff = n.Linear(ff, cfg.FFNMult*h, h)
		ff = n.Dropout(ff)
		x = n.Residual(ff, x)
		x = n.LN(x)
	}

	// Pooler + classification head (applied per token; the [CLS] slice is a
	// zero-FLOPs view we do not model separately).
	x = n.Linear(x, h, h)
	x = n.GELU(x)
	n.Linear(x, h, cfg.Classes)
	return n
}

// standardTransformers lists the BERT size ladder used for the text group.
var standardTransformers = map[string]TransformerConfig{
	"bert-tiny":   {Layers: 2, Hidden: 128, Heads: 2, SeqLen: 128},
	"bert-mini":   {Layers: 4, Hidden: 256, Heads: 4, SeqLen: 128},
	"bert-small":  {Layers: 4, Hidden: 512, Heads: 8, SeqLen: 128},
	"bert-medium": {Layers: 8, Hidden: 512, Heads: 8, SeqLen: 128},
	"bert-base":   {Layers: 12, Hidden: 768, Heads: 12, SeqLen: 128},
}

// StandardTransformer builds one of the canonical BERT sizes.
func StandardTransformer(name string) (*dnn.Network, error) {
	cfg, ok := standardTransformers[name]
	if !ok {
		return nil, fmt.Errorf("zoo: unknown transformer %q", name)
	}
	return Transformer(name, cfg), nil
}
