package zoo

import (
	"fmt"

	"repro/internal/dnn"
)

// VGGConfig parameterizes a (possibly non-standard) VGG network.
type VGGConfig struct {
	// Stages lists, per stage, the number of 3×3 convolutions before the
	// 2×2 max pool that ends the stage. Standard VGG-16 is {2,2,3,3,3}.
	Stages []int
	// Channels lists the output channel count of each stage. Standard VGG
	// is {64,128,256,512,512}.
	Channels []int
	// BatchNorm inserts BN after every convolution (the "_bn" variants).
	BatchNorm bool
	// Resolution is the input image side (224 by default).
	Resolution int
	// ClassifierWidth is the hidden width of the two FC layers (4096 by
	// default).
	ClassifierWidth int
}

// VGG builds a VGG network from the configuration.
func VGG(name string, cfg VGGConfig) *dnn.Network {
	if cfg.Resolution == 0 {
		cfg.Resolution = 224
	}
	if cfg.ClassifierWidth == 0 {
		cfg.ClassifierWidth = 4096
	}
	if len(cfg.Stages) != len(cfg.Channels) {
		panic(fmt.Sprintf("zoo: VGG %q: %d stages but %d channel entries",
			name, len(cfg.Stages), len(cfg.Channels)))
	}
	n := dnn.New(name, "VGG", dnn.TaskImageClassification, imageInput(cfg.Resolution))

	x := dnn.NetworkInput
	inC := 3
	res := cfg.Resolution
	for s, convs := range cfg.Stages {
		outC := cfg.Channels[s]
		for c := 0; c < convs; c++ {
			x = n.Conv(x, inC, outC, 3, 1, 1)
			if cfg.BatchNorm {
				x = n.BN(x)
			}
			x = n.ReLU(x)
			inC = outC
		}
		x = n.MaxPool(x, 2, 2, 0)
		res /= 2
	}

	x = n.Flatten(x)
	feat := inC * res * res
	x = n.Linear(x, feat, cfg.ClassifierWidth)
	x = n.ReLU(x)
	x = n.Dropout(x)
	x = n.Linear(x, cfg.ClassifierWidth, cfg.ClassifierWidth)
	x = n.ReLU(x)
	x = n.Dropout(x)
	n.Linear(x, cfg.ClassifierWidth, numClasses)
	return n
}

// standardVGGStages maps depth names to per-stage conv counts.
var standardVGGStages = map[int][]int{
	11: {1, 1, 2, 2, 2},
	13: {2, 2, 2, 2, 2},
	16: {2, 2, 3, 3, 3},
	19: {2, 2, 4, 4, 4},
}

// standardVGGChannels is the canonical stage channel ramp.
var standardVGGChannels = []int{64, 128, 256, 512, 512}

// StandardVGG builds vgg11/13/16/19, optionally with batch norm.
func StandardVGG(depth int, batchNorm bool) (*dnn.Network, error) {
	stages, ok := standardVGGStages[depth]
	if !ok {
		return nil, fmt.Errorf("zoo: no standard VGG of depth %d", depth)
	}
	name := fmt.Sprintf("vgg%d", depth)
	if batchNorm {
		name += "_bn"
	}
	return VGG(name, VGGConfig{
		Stages:    append([]int(nil), stages...),
		Channels:  append([]int(nil), standardVGGChannels...),
		BatchNorm: batchNorm,
	}), nil
}

// MustVGG is StandardVGG that panics on unknown depth.
func MustVGG(depth int, batchNorm bool) *dnn.Network {
	n, err := StandardVGG(depth, batchNorm)
	if err != nil {
		panic(err)
	}
	return n
}

// scaleChannels multiplies a channel ramp by f, rounding to multiples of 8
// (minimum 8), the convention width-scaled models use.
func scaleChannels(channels []int, f float64) []int {
	out := make([]int, len(channels))
	for i, c := range channels {
		v := int(float64(c)*f+4) / 8 * 8
		if v < 8 {
			v = 8
		}
		out[i] = v
	}
	return out
}
