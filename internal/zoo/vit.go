package zoo

import (
	"fmt"

	"repro/internal/dnn"
)

// ViTConfig parameterizes a Vision Transformer: images are cut into patches
// by a strided convolution (the patch embedding), then processed by a
// standard transformer encoder. ViTs stress the predictors with a workload
// that is convolutional at the stem and attention-dominated everywhere else.
type ViTConfig struct {
	// PatchSize is the patch side (16 for ViT-B/16).
	PatchSize int
	// Hidden is the embedding width (768 for ViT-Base).
	Hidden int
	// Layers is the encoder depth (12 for ViT-Base).
	Layers int
	// Heads is the attention head count (Hidden/64 by default).
	Heads int
	// FFNMult is the MLP expansion (4 for standard ViTs).
	FFNMult int
	// Resolution is the input image side (224 by default).
	Resolution int
	// Classes is the classification label count.
	Classes int
}

// ViT builds a Vision Transformer from the configuration.
func ViT(name string, cfg ViTConfig) *dnn.Network {
	if cfg.Resolution == 0 {
		cfg.Resolution = 224
	}
	if cfg.FFNMult == 0 {
		cfg.FFNMult = 4
	}
	if cfg.Classes == 0 {
		cfg.Classes = numClasses
	}
	if cfg.Heads == 0 {
		cfg.Heads = cfg.Hidden / 64
	}
	if cfg.Resolution%cfg.PatchSize != 0 {
		panic(fmt.Sprintf("zoo: ViT %q: resolution %d not divisible by patch %d",
			name, cfg.Resolution, cfg.PatchSize))
	}
	if cfg.Hidden%cfg.Heads != 0 {
		panic(fmt.Sprintf("zoo: ViT %q: hidden %d not divisible by heads %d",
			name, cfg.Hidden, cfg.Heads))
	}
	n := dnn.New(name, "ViT", dnn.TaskImageClassification, imageInput(cfg.Resolution))

	h := cfg.Hidden
	// Patch embedding: a PatchSize-strided convolution, then the zero-copy
	// view from (N, D, P, P) to the (N, T=P², D) token sequence.
	x := n.Conv(dnn.NetworkInput, 3, h, cfg.PatchSize, cfg.PatchSize, 0)
	x = n.Add(&dnn.Layer{Kind: dnn.KindReshapeTokens, Inputs: []int{x}})
	x = n.LN(x)

	for l := 0; l < cfg.Layers; l++ {
		// Pre-LN encoder block.
		ln1 := n.LN(x)
		q := n.Linear(ln1, h, h)
		k := n.Linear(ln1, h, h)
		v := n.Linear(ln1, h, h)
		scores := n.MatMul(q, k, cfg.Heads, true)
		scores = n.Softmax(scores)
		ctx := n.MatMul(scores, v, cfg.Heads, false)
		attn := n.Linear(ctx, h, h)
		x = n.Residual(attn, x)

		ln2 := n.LN(x)
		ff := n.Linear(ln2, h, cfg.FFNMult*h)
		ff = n.GELU(ff)
		ff = n.Linear(ff, cfg.FFNMult*h, h)
		x = n.Residual(ff, x)
	}

	x = n.LN(x)
	// Classification head (per token; the [CLS] slice is a zero-cost view).
	n.Linear(x, h, cfg.Classes)
	return n
}

// standardViTs is the canonical size ladder.
var standardViTs = map[string]ViTConfig{
	"vit-tiny":  {PatchSize: 16, Hidden: 192, Layers: 12, Heads: 3},
	"vit-small": {PatchSize: 16, Hidden: 384, Layers: 12, Heads: 6},
	"vit-base":  {PatchSize: 16, Hidden: 768, Layers: 12, Heads: 12},
}

// StandardViT builds vit-tiny/small/base (patch 16, 224²).
func StandardViT(name string) (*dnn.Network, error) {
	cfg, ok := standardViTs[name]
	if !ok {
		return nil, fmt.Errorf("zoo: unknown ViT %q", name)
	}
	return ViT(name, cfg), nil
}
