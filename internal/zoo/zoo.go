package zoo

import (
	"fmt"
	"sort"

	"repro/internal/dnn"
)

// FullZooSize is the network count of the paper's dataset ("In total, we
// have 646 networks", §3). Full() generates exactly this many.
const FullZooSize = 646

// Standard returns the named, canonical models used throughout the paper's
// figures and case studies.
func Standard() []*dnn.Network {
	bs := standardBuilders()
	nets := make([]*dnn.Network, len(bs))
	for i, b := range bs {
		nets[i] = b()
	}
	return nets
}

// standardBuilders returns one constructor per standard model, in the
// canonical order Standard() materializes.
func standardBuilders() []func() *dnn.Network {
	bs := []func() *dnn.Network{
		func() *dnn.Network { return MustResNet(18) },
		func() *dnn.Network { return MustResNet(34) },
		func() *dnn.Network { return MustResNet(50) },
		func() *dnn.Network { return MustResNet(101) },
		func() *dnn.Network { return MustResNet(152) },
		func() *dnn.Network { return MustResNet(26) },
		func() *dnn.Network { return MustResNet(44) },
		func() *dnn.Network { return MustResNet(62) },
		func() *dnn.Network { return MustResNet(77) },
		func() *dnn.Network { return MustResNet(89) },
		func() *dnn.Network { return MustVGG(11, false) },
		func() *dnn.Network { return MustVGG(13, false) },
		func() *dnn.Network { return MustVGG(16, false) },
		func() *dnn.Network { return MustVGG(19, false) },
		func() *dnn.Network { return MustVGG(11, true) },
		func() *dnn.Network { return MustVGG(13, true) },
		func() *dnn.Network { return MustVGG(16, true) },
		func() *dnn.Network { return MustVGG(19, true) },
		func() *dnn.Network { return MustDenseNet(121) },
		func() *dnn.Network { return MustDenseNet(161) },
		func() *dnn.Network { return MustDenseNet(169) },
		func() *dnn.Network { return MustDenseNet(201) },
		func() *dnn.Network { return mustNet(ResNeXt("50_32x4d")) },
		func() *dnn.Network { return mustNet(ResNeXt("101_32x8d")) },
		func() *dnn.Network { return mustNet(WideResNet(50)) },
		func() *dnn.Network { return mustNet(WideResNet(101)) },
		func() *dnn.Network { return StandardMobileNetV2() },
		func() *dnn.Network { return StandardShuffleNetV1() },
		func() *dnn.Network { return AlexNet(224) },
		func() *dnn.Network { return SqueezeNet("1.0", 224) },
		func() *dnn.Network { return SqueezeNet("1.1", 224) },
		func() *dnn.Network { return GoogLeNet(224) },
	}
	for _, name := range []string{"bert-tiny", "bert-mini", "bert-small", "bert-medium", "bert-base"} {
		bs = append(bs, func() *dnn.Network {
			t, err := StandardTransformer(name)
			if err != nil {
				panic(err)
			}
			return t
		})
	}
	for _, name := range []string{"vit-tiny", "vit-small", "vit-base"} {
		bs = append(bs, func() *dnn.Network {
			v, err := StandardViT(name)
			if err != nil {
				panic(err)
			}
			return v
		})
	}
	return bs
}

// mustNet unwraps builder errors for compile-time-constant variants.
func mustNet(n *dnn.Network, err error) *dnn.Network {
	if err != nil {
		panic(err)
	}
	return n
}

// ByName builds one of the standard networks by its dataset name.
func ByName(name string) (*dnn.Network, error) {
	for _, n := range Standard() {
		if n.Name == name {
			return n, nil
		}
	}
	return nil, fmt.Errorf("zoo: unknown standard network %q", name)
}

// MustByName is ByName that panics; for experiment tables with fixed names.
func MustByName(name string) *dnn.Network {
	n, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return n
}

// basic-tuple space for generated ResNet variants.
var (
	resnetB1 = []int{2, 3}
	resnetB2 = []int{2, 3, 4, 5}
	resnetB3 = []int{2, 4, 6, 8}
	resnetB4 = []int{2, 3}
)

// basicResNetTuples enumerates the generated basic-block configurations in a
// stable order.
func basicResNetTuples() [][4]int {
	var out [][4]int
	for _, b1 := range resnetB1 {
		for _, b2 := range resnetB2 {
			for _, b3 := range resnetB3 {
				for _, b4 := range resnetB4 {
					out = append(out, [4]int{b1, b2, b3, b4})
				}
			}
		}
	}
	return out
}

// bottleneckResNetTuples enumerates the generated bottleneck configurations.
func bottleneckResNetTuples() [][4]int {
	var out [][4]int
	for _, b2 := range []int{4, 6, 8} {
		for _, b3 := range []int{6, 9, 12, 17, 23, 29, 36} {
			for _, b4 := range []int{3, 4} {
				out = append(out, [4]int{3, b2, b3, b4})
			}
		}
	}
	return out
}

// variantResNet names and builds a generated ResNet variant.
func variantResNet(t [4]int, bottleneck bool, width, res int) *dnn.Network {
	kind := "b"
	if bottleneck {
		kind = "bt"
	}
	name := fmt.Sprintf("resnetv-%s%d.%d.%d.%d-w%d-r%d", kind, t[0], t[1], t[2], t[3], width, res)
	return ResNet(name, ResNetConfig{
		Blocks: t, Bottleneck: bottleneck, BaseWidth: width, Resolution: res,
	})
}

// vggVariantConfigs is the stage-config space for generated VGG variants
// (standard depths plus block-added/removed designs, §4 O2).
var vggVariantConfigs = [][]int{
	{1, 1, 2, 2, 2}, {2, 2, 2, 2, 2}, {2, 2, 3, 3, 3}, {2, 2, 4, 4, 4},
	{1, 2, 2, 3, 3}, {2, 2, 3, 4, 4}, {2, 3, 3, 4, 4}, {3, 3, 4, 4, 4},
	{1, 1, 1, 2, 2}, {2, 2, 5, 5, 5},
}

// isStandardVGGConfig reports whether a stage config matches a canonical
// depth.
func isStandardVGGConfig(stages []int) bool {
	for _, std := range standardVGGStages {
		match := len(std) == len(stages)
		for i := range std {
			if i < len(stages) && std[i] != stages[i] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// Full deterministically generates the complete 646-network zoo: the standard
// models plus structured variants across every family (depth/width/resolution
// sweeps for CNNs, size/sequence/width sweeps for transformers). The family
// mix loosely follows public model zoos — ResNet variants dominate, but every
// family contributes enough diversity that held-out evaluation exercises
// genuinely different structures.
func Full() []*dnn.Network {
	bs := FullBuilders()
	nets := make([]*dnn.Network, len(bs))
	seen := make(map[string]bool, len(bs))
	for i, b := range bs {
		n := b()
		if seen[n.Name] {
			panic(fmt.Sprintf("zoo: duplicate network name %q", n.Name))
		}
		seen[n.Name] = true
		nets[i] = n
	}
	return nets
}

// FullBuilders returns one constructor per zoo network in the zoo's canonical
// order: FullBuilders()[i]() builds exactly Full()[i]. Samplers construct
// only the networks they keep — the quick experiment lab, for example,
// benchmarks a 1-in-6 subset without materializing all 646 models.
func FullBuilders() []func() *dnn.Network {
	nets := standardBuilders()
	add := func(f func() *dnn.Network) {
		nets = append(nets, f)
	}

	basics := basicResNetTuples()
	// Width-scaled basic ResNets.
	for _, w := range []int{48, 80} {
		for _, t := range basics {
			add(func() *dnn.Network { return variantResNet(t, false, w, 224) })
		}
	}
	// Resolution-scaled basic ResNets at standard width (half the tuples).
	for _, res := range []int{160, 192} {
		for _, t := range basics[:len(basics)/2] {
			add(func() *dnn.Network { return variantResNet(t, false, 64, res) })
		}
	}
	// Bottleneck variants at widened base.
	for _, t := range bottleneckResNetTuples() {
		add(func() *dnn.Network { return variantResNet(t, true, 96, 224) })
	}

	// VGG variants: width scales of every stage config, the non-standard
	// configs at full width, and resolution variants.
	for _, scale := range []float64{0.375, 0.5, 0.625, 0.75, 0.875, 1.125, 1.25} {
		for i, stages := range vggVariantConfigs {
			add(func() *dnn.Network {
				name := fmt.Sprintf("vggv-c%d-s%04d", i, int(scale*1000))
				return VGG(name, VGGConfig{
					Stages:   append([]int(nil), stages...),
					Channels: scaleChannels(standardVGGChannels, scale),
				})
			})
		}
	}
	for i, stages := range vggVariantConfigs {
		if isStandardVGGConfig(stages) {
			continue
		}
		add(func() *dnn.Network {
			name := fmt.Sprintf("vggv-c%d-s1000", i)
			return VGG(name, VGGConfig{
				Stages:   append([]int(nil), stages...),
				Channels: append([]int(nil), standardVGGChannels...),
			})
		})
	}
	for i, stages := range vggVariantConfigs {
		add(func() *dnn.Network {
			name := fmt.Sprintf("vggv-c%d-r192", i)
			return VGG(name, VGGConfig{
				Stages:     append([]int(nil), stages...),
				Channels:   append([]int(nil), standardVGGChannels...),
				Resolution: 192,
			})
		})
	}

	// DenseNet variants: growth-rate sweep and resolution variants.
	dnConfigs := [][]int{{6, 12, 24, 16}, {6, 12, 32, 32}, {4, 8, 16, 12}, {6, 12, 18, 12}}
	for _, g := range []int{12, 16, 20, 24, 28, 36, 40, 44} {
		for i, blocks := range dnConfigs {
			add(func() *dnn.Network {
				name := fmt.Sprintf("densenetv-c%d-g%d", i, g)
				return DenseNet(name, DenseNetConfig{
					Blocks: append([]int(nil), blocks...), GrowthRate: g,
				})
			})
		}
	}
	for _, res := range []int{160, 192} {
		for _, depth := range []int{121, 169} {
			add(func() *dnn.Network {
				cfg := standardDenseNets[depth]
				cfg.Blocks = append([]int(nil), cfg.Blocks...)
				cfg.Resolution = res
				return DenseNet(fmt.Sprintf("densenet%d_%d", depth, res), cfg)
			})
		}
	}

	// MobileNetV2: width × resolution sweep plus expansion-factor variants.
	for _, w := range []float64{0.35, 0.5, 0.75, 1.0, 1.25, 1.4} {
		for _, res := range []int{96, 128, 160, 192, 224, 256} {
			if int(w*100+0.5) == 100 && res == 224 {
				continue
			}
			add(func() *dnn.Network {
				return MobileNetV2(mobileNetVariantName(w, res), MobileNetV2Config{
					WidthMult: w, Resolution: res,
				})
			})
		}
	}
	for _, t := range []int{3, 4} {
		for _, w := range []float64{0.5, 1.0, 1.4} {
			for _, res := range []int{160, 224} {
				add(func() *dnn.Network {
					name := fmt.Sprintf("mobilenet_v2_t%d_%03d_%d", t, int(w*100+0.5), res)
					return MobileNetV2(name, MobileNetV2Config{
						WidthMult: w, Resolution: res, ExpandOverride: t,
					})
				})
			}
		}
	}

	// ShuffleNet v1: group × scale sweep plus resolution variants.
	for _, g := range []int{1, 2, 3, 4, 8} {
		for _, s := range []float64{0.5, 1.0, 1.5, 2.0} {
			if g == 3 && int(s*100) == 100 {
				continue
			}
			add(func() *dnn.Network {
				name := fmt.Sprintf("shufflenet_v1_g%d_s%03d", g, int(s*100))
				return ShuffleNetV1(name, ShuffleNetV1Config{Groups: g, Scale: s})
			})
		}
	}
	for _, g := range []int{1, 2, 3, 4, 8} {
		for _, res := range []int{160, 192} {
			add(func() *dnn.Network {
				name := fmt.Sprintf("shufflenet_v1_g%d_r%d", g, res)
				return ShuffleNetV1(name, ShuffleNetV1Config{Groups: g, Resolution: res})
			})
		}
	}

	// Resolution variants of the remaining CNN families.
	for _, res := range []int{160, 192, 256} {
		add(func() *dnn.Network { return AlexNet(res) })
		add(func() *dnn.Network { return GoogLeNet(res) })
		add(func() *dnn.Network { return SqueezeNet("1.0", res) })
		add(func() *dnn.Network { return SqueezeNet("1.1", res) })
	}

	// Transformer sweep at the BERT-and-above scale the HuggingFace
	// text-classification group occupies, plus FFN-width and head-count
	// variants (skipping points that collide with the named standard
	// models).
	for _, layers := range []int{4, 6, 8, 12} {
		for _, hidden := range []int{256, 512, 768} {
			for _, seq := range []int{128, 256, 384} {
				cfg := TransformerConfig{Layers: layers, Hidden: hidden, SeqLen: seq}
				if isStandardTransformer(cfg) {
					continue
				}
				add(func() *dnn.Network {
					name := fmt.Sprintf("tx-l%d-h%d-s%d", layers, hidden, seq)
					return Transformer(name, cfg)
				})
			}
		}
	}
	for _, layers := range []int{4, 8, 12} {
		for _, hidden := range []int{512, 768} {
			add(func() *dnn.Network {
				name := fmt.Sprintf("tx-l%d-h%d-ffn2", layers, hidden)
				return Transformer(name, TransformerConfig{
					Layers: layers, Hidden: hidden, SeqLen: 128, FFNMult: 2,
				})
			})
		}
	}
	for _, heads := range []int{4, 16} {
		for _, layers := range []int{4, 8} {
			add(func() *dnn.Network {
				name := fmt.Sprintf("tx-l%d-h512-a%d", layers, heads)
				return Transformer(name, TransformerConfig{
					Layers: layers, Hidden: 512, Heads: heads, SeqLen: 128,
				})
			})
		}
	}

	// ViT sweep: patch/width/depth/resolution variants.
	for _, cfg := range []ViTConfig{
		{PatchSize: 32, Hidden: 768, Layers: 12, Heads: 12},
		{PatchSize: 16, Hidden: 192, Layers: 12, Heads: 3, Resolution: 160},
		{PatchSize: 16, Hidden: 384, Layers: 12, Heads: 6, Resolution: 192},
		{PatchSize: 16, Hidden: 384, Layers: 8, Heads: 6},
		{PatchSize: 16, Hidden: 512, Layers: 10, Heads: 8},
		{PatchSize: 32, Hidden: 384, Layers: 12, Heads: 6},
		{PatchSize: 16, Hidden: 256, Layers: 12, Heads: 4},
		{PatchSize: 16, Hidden: 768, Layers: 8, Heads: 12},
	} {
		add(func() *dnn.Network {
			res := cfg.Resolution
			if res == 0 {
				res = 224
			}
			name := fmt.Sprintf("vitv-p%d-h%d-l%d-r%d", cfg.PatchSize, cfg.Hidden, cfg.Layers, res)
			return ViT(name, cfg)
		})
	}

	// ResNeXt cardinality/width sweep.
	for _, g := range []int{8, 16, 32} {
		for _, w := range []int{2, 4, 8} {
			add(func() *dnn.Network {
				name := fmt.Sprintf("resnextv-g%d-w%d", g, w)
				return ResNet(name, ResNetConfig{
					Blocks: [4]int{3, 4, 6, 3}, Bottleneck: true, Groups: g, WidthPerGroup: w,
				})
			})
		}
	}

	// Pad to exactly FullZooSize, drawing round-robin from additional
	// variant pools so no single family dominates the tail.
	for _, f := range padPoolBuilders() {
		if len(nets) >= FullZooSize {
			break
		}
		add(f)
	}
	if len(nets) != FullZooSize {
		panic(fmt.Sprintf("zoo: generated %d builders, want %d", len(nets), FullZooSize))
	}
	return nets
}

// padPoolBuilders enumerates the deterministic interleaved filler pool:
// ResNet widths, VGG scales, MobileNet widths, DenseNet growths, ShuffleNet
// scales and mid-size transformers, drawn round-robin.
func padPoolBuilders() []func() *dnn.Network {
	var pools [][]func() *dnn.Network

	var resnets []func() *dnn.Network
	for _, w := range []int{32, 96, 112} {
		for _, t := range basicResNetTuples() {
			resnets = append(resnets, func() *dnn.Network {
				return variantResNet(t, false, w, 224)
			})
		}
	}
	pools = append(pools, resnets)

	var vggs []func() *dnn.Network
	for _, scale := range []float64{0.45, 0.55, 0.7, 0.8, 0.95} {
		for i, stages := range vggVariantConfigs {
			vggs = append(vggs, func() *dnn.Network {
				name := fmt.Sprintf("vggv-c%d-s%04d", i, int(scale*1000))
				return VGG(name, VGGConfig{
					Stages:   append([]int(nil), stages...),
					Channels: scaleChannels(standardVGGChannels, scale),
				})
			})
		}
	}
	pools = append(pools, vggs)

	var mobiles []func() *dnn.Network
	for _, w := range []float64{0.6, 0.9, 1.1} {
		for _, res := range []int{96, 128, 160, 192, 224, 256} {
			mobiles = append(mobiles, func() *dnn.Network {
				return MobileNetV2(mobileNetVariantName(w, res),
					MobileNetV2Config{WidthMult: w, Resolution: res})
			})
		}
	}
	pools = append(pools, mobiles)

	var denses []func() *dnn.Network
	dnConfigs := [][]int{{6, 12, 24, 16}, {6, 12, 32, 32}, {4, 8, 16, 12}, {6, 12, 18, 12}}
	for _, g := range []int{14, 18, 22, 26} {
		for i, blocks := range dnConfigs {
			denses = append(denses, func() *dnn.Network {
				name := fmt.Sprintf("densenetv-c%d-g%d", i, g)
				return DenseNet(name, DenseNetConfig{
					Blocks: append([]int(nil), blocks...), GrowthRate: g,
				})
			})
		}
	}
	pools = append(pools, denses)

	var shuffles []func() *dnn.Network
	for _, g := range []int{1, 2, 3, 4, 8} {
		for _, s := range []float64{0.75, 1.25} {
			shuffles = append(shuffles, func() *dnn.Network {
				name := fmt.Sprintf("shufflenet_v1_g%d_s%03d", g, int(s*100))
				return ShuffleNetV1(name, ShuffleNetV1Config{Groups: g, Scale: s})
			})
		}
	}
	pools = append(pools, shuffles)

	var txs []func() *dnn.Network
	for _, layers := range []int{3, 5, 7, 9, 10} {
		for _, hidden := range []int{256, 512, 768} {
			txs = append(txs, func() *dnn.Network {
				name := fmt.Sprintf("tx-l%d-h%d-s128", layers, hidden)
				return Transformer(name, TransformerConfig{
					Layers: layers, Hidden: hidden, SeqLen: 128,
				})
			})
		}
	}
	pools = append(pools, txs)

	var out []func() *dnn.Network
	for i := 0; ; i++ {
		advanced := false
		for _, p := range pools {
			if i < len(p) {
				out = append(out, p[i])
				advanced = true
			}
		}
		if !advanced {
			return out
		}
	}
}

// isStandardTransformer reports whether a sweep point matches one of the
// named BERT sizes (same layers/hidden/seq and default heads).
func isStandardTransformer(cfg TransformerConfig) bool {
	for _, std := range standardTransformers {
		if std.Layers == cfg.Layers && std.Hidden == cfg.Hidden && std.SeqLen == cfg.SeqLen {
			return true
		}
	}
	return false
}

// Families returns the distinct family names present in the full zoo.
func Families() []string {
	set := make(map[string]bool)
	for _, n := range Full() {
		set[n.Family] = true
	}
	out := make([]string, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// Figure4Nets returns the ResNet and VGG series of Figure 4: standard plus
// non-standard block-count variants of both families.
func Figure4Nets() (resnets, vggs []*dnn.Network) {
	resnetTuples := [][4]int{
		{2, 2, 2, 2}, {2, 2, 4, 2}, {3, 4, 6, 3}, {3, 3, 3, 3},
		{2, 3, 5, 3}, {3, 4, 8, 3}, {3, 5, 10, 3}, {3, 6, 12, 3},
	}
	for _, t := range resnetTuples {
		cfg := ResNetConfig{Blocks: t}
		name := fmt.Sprintf("fig4-resnet%d-%d.%d.%d.%d", cfg.Depth(), t[0], t[1], t[2], t[3])
		resnets = append(resnets, ResNet(name, cfg))
	}
	vggConfigs := [][]int{
		{1, 1, 2, 2, 2}, {2, 2, 2, 2, 2}, {2, 2, 3, 3, 3}, {2, 2, 4, 4, 4},
		{2, 3, 3, 4, 4}, {3, 3, 4, 4, 4}, {2, 2, 5, 5, 5}, {3, 3, 5, 5, 5},
	}
	for i, stages := range vggConfigs {
		name := fmt.Sprintf("fig4-vgg-c%d", i)
		vggs = append(vggs, VGG(name, VGGConfig{
			Stages:   append([]int(nil), stages...),
			Channels: append([]int(nil), standardVGGChannels...),
		}))
	}
	return resnets, vggs
}
