package zoo

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/dnn"
)

func TestFullZooSizeAndUniqueness(t *testing.T) {
	nets := Full()
	if len(nets) != FullZooSize {
		t.Fatalf("zoo size = %d, want %d", len(nets), FullZooSize)
	}
	seen := map[string]bool{}
	for _, n := range nets {
		if seen[n.Name] {
			t.Fatalf("duplicate network name %q", n.Name)
		}
		seen[n.Name] = true
	}
}

func TestFullZooInfers(t *testing.T) {
	for _, n := range Full() {
		if err := n.Infer(4); err != nil {
			t.Fatalf("%s: %v", n.Name, err)
		}
		flops, err := n.TotalFLOPs()
		if err != nil || flops <= 0 {
			t.Fatalf("%s: FLOPs = %d, %v", n.Name, flops, err)
		}
	}
}

func TestFullZooDeterministic(t *testing.T) {
	a, b := Full(), Full()
	for i := range a {
		if a[i].Name != b[i].Name || len(a[i].Layers) != len(b[i].Layers) {
			t.Fatalf("zoo generation not deterministic at index %d", i)
		}
	}
}

func TestFamilyCoverage(t *testing.T) {
	fams := Families()
	want := []string{"AlexNet", "DenseNet", "GoogLeNet", "MobileNetV2",
		"ResNeXt", "ResNet", "ShuffleNetV1", "SqueezeNet", "Transformer", "VGG", "ViT"}
	if len(fams) != len(want) {
		t.Fatalf("families = %v", fams)
	}
	for i := range want {
		if fams[i] != want[i] {
			t.Fatalf("families = %v, want %v", fams, want)
		}
	}
}

// TestKnownFLOPs cross-checks the builders against published per-image
// multiply counts (thop conventions, 224×224 input). Tolerances absorb our
// counting of cheap non-conv layers.
func TestKnownFLOPs(t *testing.T) {
	tests := []struct {
		name   string
		gflops float64 // published multiply count per image
		tol    float64
	}{
		{"resnet18", 1.82, 0.10},
		{"resnet50", 4.12, 0.10},
		{"resnet101", 7.85, 0.10},
		{"vgg16", 15.5, 0.10},
		{"densenet121", 2.88, 0.12},
		{"mobilenet_v2", 0.32, 0.15},
		{"alexnet", 0.71, 0.15},
		{"googlenet", 1.51, 0.15},
	}
	for _, tt := range tests {
		n := MustByName(tt.name)
		flops, err := n.FLOPsAt(1)
		if err != nil {
			t.Fatalf("%s: %v", tt.name, err)
		}
		got := float64(flops) / 1e9
		if got < tt.gflops*(1-tt.tol) || got > tt.gflops*(1+tt.tol) {
			t.Errorf("%s: %.2f GFLOPs, want %.2f ± %.0f%%", tt.name, got, tt.gflops, tt.tol*100)
		}
	}
}

func TestResNetDepthNaming(t *testing.T) {
	for _, depth := range []int{18, 34, 50, 101, 152, 44, 62, 77} {
		n, err := StandardResNet(depth)
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		// Conv layer count (excluding downsample projections) + FC should
		// equal the nominal depth.
		if err := n.Infer(1); err != nil {
			t.Fatal(err)
		}
		cfg := standardResNetBlocks[depth]
		got := ResNetConfig{Blocks: cfg.blocks, Bottleneck: cfg.bottleneck}.Depth()
		if got != depth {
			t.Errorf("depth formula for %d gives %d", depth, got)
		}
	}
	if _, err := StandardResNet(33); err == nil {
		t.Fatal("unknown depth should error")
	}
}

func TestVGGConfigs(t *testing.T) {
	for _, depth := range []int{11, 13, 16, 19} {
		n := MustVGG(depth, false)
		convs := 0
		for _, l := range n.Layers {
			if l.Kind == dnn.KindConv2D {
				convs++
			}
		}
		// VGG-depth = convs + 3 FC layers.
		if convs+3 != depth {
			t.Errorf("vgg%d has %d convs", depth, convs)
		}
	}
	bn := MustVGG(16, true)
	hasBN := false
	for _, l := range bn.Layers {
		if l.Kind == dnn.KindBatchNorm {
			hasBN = true
		}
	}
	if !hasBN {
		t.Fatal("vgg16_bn has no batch norm layers")
	}
}

func TestDenseNetGrowth(t *testing.T) {
	n := MustDenseNet(121)
	if err := n.Infer(1); err != nil {
		t.Fatal(err)
	}
	// DenseNet-121's final feature width is 1024.
	last := n.Layers[n.Output()]
	if last.Kind != dnn.KindLinear || last.InFeatures != 1024 {
		t.Fatalf("densenet121 classifier input = %d, want 1024", last.InFeatures)
	}
	concats := 0
	for _, l := range n.Layers {
		if l.Kind == dnn.KindConcat {
			concats++
		}
	}
	if concats != 6+12+24+16 {
		t.Fatalf("densenet121 has %d dense layers", concats)
	}
}

func TestMobileNetDepthwise(t *testing.T) {
	n := StandardMobileNetV2()
	dw := 0
	for _, l := range n.Layers {
		if l.Kind == dnn.KindConv2D && l.Groups > 1 {
			dw++
		}
	}
	if dw != 17 { // one depthwise conv per inverted residual block
		t.Fatalf("mobilenet_v2 has %d depthwise convs, want 17", dw)
	}
}

func TestShuffleNetChannels(t *testing.T) {
	n := StandardShuffleNetV1()
	if err := n.Infer(1); err != nil {
		t.Fatal(err)
	}
	shuffles := 0
	for _, l := range n.Layers {
		if l.Kind == dnn.KindChannelShuffle {
			shuffles++
		}
	}
	if shuffles != 16 { // one per unit: 4+8+4
		t.Fatalf("shufflenet has %d channel shuffles", shuffles)
	}
	if _, err := ByName("shufflenet_v1"); err != nil {
		t.Fatal(err)
	}
}

func TestTransformerStructure(t *testing.T) {
	n, err := StandardTransformer("bert-base")
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Infer(2); err != nil {
		t.Fatal(err)
	}
	matmuls := 0
	for _, l := range n.Layers {
		if l.Kind == dnn.KindMatMul {
			matmuls++
		}
	}
	if matmuls != 24 { // two per encoder block
		t.Fatalf("bert-base has %d matmuls, want 24", matmuls)
	}
	if _, err := StandardTransformer("bert-huge"); err == nil {
		t.Fatal("unknown transformer should error")
	}
}

func TestByName(t *testing.T) {
	n, err := ByName("resnet50")
	if err != nil || n.Name != "resnet50" {
		t.Fatalf("ByName = %v, %v", n, err)
	}
	if _, err := ByName("nonexistent"); err == nil {
		t.Fatal("unknown name should error")
	}
}

func TestFigure4Nets(t *testing.T) {
	resnets, vggs := Figure4Nets()
	if len(resnets) != 8 || len(vggs) != 8 {
		t.Fatalf("figure 4 series sizes: %d/%d", len(resnets), len(vggs))
	}
	for _, n := range append(resnets, vggs...) {
		if err := n.Infer(2); err != nil {
			t.Fatalf("%s: %v", n.Name, err)
		}
		if !strings.HasPrefix(n.Name, "fig4-") {
			t.Fatalf("figure-4 net %q lacks naming prefix", n.Name)
		}
	}
}

func TestSqueezeNetVersions(t *testing.T) {
	v10 := SqueezeNet("1.0", 224)
	v11 := SqueezeNet("1.1", 224)
	f10, err := v10.FLOPsAt(1)
	if err != nil {
		t.Fatal(err)
	}
	f11, err := v11.FLOPsAt(1)
	if err != nil {
		t.Fatal(err)
	}
	// v1.1 is the lighter revision.
	if f11 >= f10 {
		t.Fatalf("squeezenet1.1 (%d) should be cheaper than 1.0 (%d)", f11, f10)
	}
}

func TestResolutionScalesFLOPs(t *testing.T) {
	small := AlexNet(160)
	big := AlexNet(256)
	fs, err := small.FLOPsAt(1)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := big.FLOPsAt(1)
	if err != nil {
		t.Fatal(err)
	}
	if fb <= fs {
		t.Fatalf("higher resolution should cost more: %d vs %d", fb, fs)
	}
}

func TestViTStructure(t *testing.T) {
	v, err := StandardViT("vit-base")
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Infer(2); err != nil {
		t.Fatal(err)
	}
	// 224/16 = 14 → 196 tokens of width 768 after the patch embedding.
	var tokens *dnn.Layer
	for _, l := range v.Layers {
		if l.Kind == dnn.KindReshapeTokens {
			tokens = l
			break
		}
	}
	if tokens == nil {
		t.Fatal("no token reshape layer")
	}
	if !tokens.OutShape.Equal(dnn.Shape{2, 196, 768}) {
		t.Fatalf("token shape = %v", tokens.OutShape)
	}
	matmuls := 0
	for _, l := range v.Layers {
		if l.Kind == dnn.KindMatMul {
			matmuls++
		}
	}
	if matmuls != 24 {
		t.Fatalf("vit-base matmuls = %d, want 24", matmuls)
	}
	// Published ViT-B/16: ≈ 17.6 GFLOPs per image.
	flops, err := v.FLOPsAt(1)
	if err != nil {
		t.Fatal(err)
	}
	if g := float64(flops) / 1e9; g < 15 || g > 20 {
		t.Fatalf("vit-base GFLOPs = %.2f, want ≈ 17.6", g)
	}
}

func TestResNeXtAndWide(t *testing.T) {
	x, err := ResNeXt("50_32x4d")
	if err != nil {
		t.Fatal(err)
	}
	flops, err := x.FLOPsAt(1)
	if err != nil {
		t.Fatal(err)
	}
	// Published resnext50_32x4d ≈ 4.2 GFLOPs/image.
	if g := float64(flops) / 1e9; g < 3.7 || g > 4.8 {
		t.Fatalf("resnext50 GFLOPs = %.2f", g)
	}
	grouped := 0
	for _, l := range x.Layers {
		if l.Kind == dnn.KindConv2D && l.Groups == 32 {
			grouped++
		}
	}
	if grouped != 16 { // one grouped 3×3 per bottleneck block
		t.Fatalf("resnext50 grouped convs = %d", grouped)
	}

	w, err := WideResNet(50)
	if err != nil {
		t.Fatal(err)
	}
	wf, err := w.FLOPsAt(1)
	if err != nil {
		t.Fatal(err)
	}
	// Published wide_resnet50_2 ≈ 11.4 GFLOPs/image.
	if g := float64(wf) / 1e9; g < 10 || g > 13 {
		t.Fatalf("wide_resnet50_2 GFLOPs = %.2f", g)
	}
	if _, err := ResNeXt("nope"); err == nil {
		t.Fatal("unknown variant should error")
	}
	if _, err := WideResNet(18); err == nil {
		t.Fatal("unknown depth should error")
	}
}

// TestFullBuildersMatchFull pins the lazy-zoo invariant NewQuickLab depends
// on: FullBuilders()[i]() constructs exactly Full()[i], so a caller can
// materialize any subset of the zoo without building the rest.
func TestFullBuildersMatchFull(t *testing.T) {
	full := Full()
	builders := FullBuilders()
	if len(builders) != len(full) {
		t.Fatalf("builders = %d, zoo = %d", len(builders), len(full))
	}
	for i, mk := range builders {
		n := mk()
		if n.Name != full[i].Name {
			t.Fatalf("builder %d builds %q, zoo has %q", i, n.Name, full[i].Name)
		}
		if !reflect.DeepEqual(n, full[i]) {
			t.Fatalf("builder %d (%s): network structure differs from Full()", i, n.Name)
		}
	}
}
