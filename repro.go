// Package repro is a from-scratch Go reproduction of
//
//	Li, Sun, Jog. "Path Forward Beyond Simulators: Fast and Accurate GPU
//	Execution Time Prediction for DNN Workloads." MICRO 2023.
//
// It provides the paper's linear-regression performance models (End-to-End,
// Layer-Wise, Kernel-Wise and Inter-GPU Kernel-Wise) together with every
// substrate they need: a DNN representation with shape inference and FLOPs
// counting, a 646-network model zoo, a cuDNN-like kernel-selection layer, a
// synthetic GPU timing substrate standing in for physical hardware, a
// PyTorch-Profiler-style tracer, a CSV-backed measurement dataset, and the
// case-study simulators (bandwidth design-space exploration, disaggregated
// memory, cross-GPU scheduling).
//
// This root package is the stable facade a downstream user imports; it
// re-exports the library's types by alias and wires the most common
// workflows into a handful of functions. The typical flow mirrors the
// paper's Figure 10:
//
//	nets := repro.Zoo()                                  // workloads
//	ds, _, err := repro.Collect(nets, []repro.GPU{repro.A100}, repro.DefaultCollectOptions())
//	train, test := ds.SplitByNetwork(0.15, 1)
//	kw, err := repro.TrainKW(train, "A100")              // training part
//	seconds, err := kw.PredictNetwork(nets[0], 512)      // prediction part
//
// Experiment reproduction (every table and figure of the paper) lives behind
// the cmd/dnnperf binary and the bench harness.
package repro

import (
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dnn"
	"repro/internal/gpu"
	"repro/internal/profiler"
	"repro/internal/sim"
	"repro/internal/zoo"
)

// GPU describes a device by its theoretical specification (Table 1).
type GPU = gpu.Spec

// The seven GPUs of the paper's Table 1.
var (
	A100       = gpu.A100
	A40        = gpu.A40
	GTX1080Ti  = gpu.GTX1080Ti
	QuadroP620 = gpu.QuadroP620
	RTXA5000   = gpu.RTXA5000
	TitanRTX   = gpu.TitanRTX
	V100       = gpu.V100
)

// AllGPUs returns the Table 1 registry.
func AllGPUs() []GPU { return gpu.All() }

// GPUByName looks up a Table 1 GPU.
func GPUByName(name string) (GPU, error) { return gpu.ByName(name) }

// HypotheticalGPU builds a GPU that does not exist, for inter-GPU prediction
// and design-space exploration.
func HypotheticalGPU(name string, bwGBps, memGB, fp32TFLOPS float64) GPU {
	return gpu.Hypothetical(name, bwGBps, memGB, fp32TFLOPS)
}

// Network is a DNN structure: a topologically ordered layer DAG with shape
// inference and FLOPs counting.
type Network = dnn.Network

// Layer is one operation in a Network.
type Layer = dnn.Layer

// Shape is a tensor shape.
type Shape = dnn.Shape

// NewNetwork starts an empty network; see Network's builder methods (Conv,
// BN, ReLU, Linear, Residual, …) for assembling layers.
func NewNetwork(name, family string, task dnn.Task, input Shape) *Network {
	return dnn.New(name, family, task, input)
}

// Zoo returns the full 646-network zoo of the paper's dataset.
func Zoo() []*Network { return zoo.Full() }

// StandardNetworks returns the named canonical models (ResNets, VGGs,
// DenseNets, MobileNetV2, ShuffleNet v1, AlexNet, SqueezeNets, GoogLeNet and
// the BERT ladder).
func StandardNetworks() []*Network { return zoo.Standard() }

// NetworkByName builds one of the standard networks.
func NetworkByName(name string) (*Network, error) { return zoo.ByName(name) }

// Dataset is the measurement database the models train on.
type Dataset = dataset.Dataset

// CollectOptions configures dataset collection.
type CollectOptions = dataset.BuildOptions

// CollectReport summarizes a collection run.
type CollectReport = dataset.BuildReport

// DefaultCollectOptions returns the paper's measurement protocol
// (warm-up 20, measure 30 batches; E2E at batch sizes 4/64/512; layer and
// kernel detail at 512).
func DefaultCollectOptions() CollectOptions { return dataset.DefaultBuildOptions() }

// Collect profiles the networks on the GPUs (through the synthetic device
// substrate) and assembles the dataset; out-of-memory runs are dropped and
// reported, mirroring the paper's dataset cleaning.
func Collect(nets []*Network, gpus []GPU, opt CollectOptions) (*Dataset, *CollectReport, error) {
	return dataset.Build(nets, gpus, opt)
}

// LoadDataset reads a dataset directory written by Dataset.WriteDir.
func LoadDataset(dir string) (*Dataset, error) { return dataset.ReadDir(dir) }

// Predictor is the common interface of the single-GPU models.
type Predictor = core.Predictor

// SweepPredictor is a Predictor that evaluates many batch sizes in one pass
// over its compiled plan (KWModel and IGKWModel implement it); see
// (*KWModel).PredictSweep.
type SweepPredictor = core.SweepPredictor

// PredictionGrid holds a (model × network × batch) grid of predicted
// seconds, indexed [model][network][batch].
type PredictionGrid = core.Grid

// PredictGrid evaluates every (model, network, batch) cell through the
// models' sweep paths — the bulk-query entry point the scheduling and
// design-space case studies are built on.
func PredictGrid(models []SweepPredictor, nets []*Network, batches []int) (*PredictionGrid, error) {
	return core.PredictGrid(models, nets, batches)
}

// The four models of the paper (§5).
type (
	E2EModel  = core.E2EModel
	LWModel   = core.LWModel
	KWModel   = core.KWModel
	IGKWModel = core.IGKWModel
)

// TrainBatchSize is the fully-utilizing batch size the paper trains at.
const TrainBatchSize = 512

// TrainE2E fits the End-to-End model (§5.2) for one GPU.
func TrainE2E(ds *Dataset, gpuName string) (*E2EModel, error) {
	return core.FitE2E(ds, gpuName, TrainBatchSize)
}

// TrainLW fits the Layer-Wise model (§5.3) for one GPU.
func TrainLW(ds *Dataset, gpuName string) (*LWModel, error) {
	return core.FitLW(ds, gpuName, TrainBatchSize)
}

// TrainKW fits the Kernel-Wise model (§5.4) for one GPU.
func TrainKW(ds *Dataset, gpuName string) (*KWModel, error) {
	return core.FitKW(ds, gpuName, TrainBatchSize)
}

// TrainIGKW fits the Inter-GPU Kernel-Wise model (§5.5) from the training
// GPUs' measurements and resolves it for a target GPU whose measurements are
// never consulted.
func TrainIGKW(ds *Dataset, trainGPUs []GPU, target GPU) (*IGKWModel, error) {
	return core.FitIGKW(ds, trainGPUs, target, TrainBatchSize)
}

// Trace is a PyTorch-Profiler-style execution profile with the layer↔kernel
// mapping (Figure 2).
type Trace = profiler.Trace

// Profile executes one network at one batch size on a GPU's device substrate
// with the paper's warm-up/averaging protocol and returns the trace.
func Profile(n *Network, batch int, g GPU) (*Trace, error) {
	return profiler.New(sim.NewDefault(g)).Profile(n, batch)
}

// KWOptions exposes the kernel-wise model's design choices (ablations,
// training mode); the zero value is the paper's full design.
type KWOptions = core.KWOptions

// TrainKWAt fits a Kernel-Wise model at an explicit batch size with explicit
// options — used by the training-workload extension, which measures at a
// smaller fully-utilizing batch because training retains every activation.
func TrainKWAt(ds *Dataset, gpuName string, batch int, opt KWOptions) (*KWModel, error) {
	return core.FitKWOptions(ds, gpuName, batch, opt)
}

// ProfileTraining executes one full training step (forward + backward +
// optimizer kernels) of the network on a GPU's device substrate and returns
// the trace — the paper's training-workload extension.
func ProfileTraining(n *Network, batch int, g GPU) (*Trace, error) {
	p := profiler.New(sim.NewDefault(g))
	p.Training = true
	return p.Profile(n, batch)
}

// SmallBatchModel recalibrates a kernel-wise model away from its training
// batch size — the CPU/communication model the paper plans in §7.
type SmallBatchModel = core.SmallBatchModel

// TrainSmallBatch learns the per-batch-size recalibration from a dataset's
// multi-batch end-to-end records. The resolver maps dataset network names to
// structures (use NetworkByName for standard models).
func TrainSmallBatch(kw *KWModel, ds *Dataset, resolve func(string) (*Network, error)) (*SmallBatchModel, error) {
	return core.FitSmallBatch(kw, ds, resolve)
}

// Interval is a prediction with a one-sigma uncertainty margin.
type Interval = core.Interval

// SaveModel serializes a trained model (E2E, LW, KW or IGKW) to a file; the
// paper's workflow distributes trained models to users this way (Figure 10).
func SaveModel(path string, model Predictor) error { return core.SaveFile(path, model) }

// LoadModel reads a model written by SaveModel; the concrete type is
// recovered from the file's kind tag.
func LoadModel(path string) (Predictor, error) { return core.LoadFile(path) }
