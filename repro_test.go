package repro

import (
	"math"
	"path/filepath"
	"testing"

	"repro/internal/units"
)

// collectSmall builds a compact dataset through the public facade.
func collectSmall(t testing.TB, gpus []GPU) *Dataset {
	t.Helper()
	var nets []*Network
	for i, n := range Zoo() {
		if i%12 == 0 {
			nets = append(nets, n)
		}
	}
	opt := DefaultCollectOptions()
	opt.Batches = 3
	opt.Warmup = 1
	ds, _, err := Collect(nets, gpus, opt)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestFacadeWorkflow(t *testing.T) {
	// The README/Figure-10 workflow, end to end through the public API.
	ds := collectSmall(t, []GPU{A100})
	train, test := ds.SplitByNetwork(0.15, 1)
	if len(train.NetworkNames()) == 0 || len(test.NetworkNames()) == 0 {
		t.Fatal("empty split")
	}

	kw, err := TrainKW(train, "A100")
	if err != nil {
		t.Fatal(err)
	}
	e2e, err := TrainE2E(train, "A100")
	if err != nil {
		t.Fatal(err)
	}
	lw, err := TrainLW(train, "A100")
	if err != nil {
		t.Fatal(err)
	}

	net, err := NetworkByName("resnet50")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Profile(net, TrainBatchSize, A100)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Predictor{e2e, lw, kw} {
		pred, err := m.PredictNetwork(net, TrainBatchSize)
		if err != nil {
			t.Fatal(err)
		}
		if pred <= 0 {
			t.Fatalf("%s predicted %v", m.Name(), pred)
		}
		// Even the coarse models stay within a small factor on a
		// well-represented network.
		if ratio := float64(pred) / tr.E2ETime; ratio < 0.2 || ratio > 5 {
			t.Fatalf("%s ratio = %v", m.Name(), ratio)
		}
	}
}

func TestFacadeIGKWAndDSE(t *testing.T) {
	trainGPUs := []GPU{A100, A40, GTX1080Ti}
	ds := collectSmall(t, trainGPUs)
	base, err := TrainIGKWBase(ds, trainGPUs)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NetworkByName("resnet50")
	if err != nil {
		t.Fatal(err)
	}
	var prev units.Seconds
	for _, bw := range []float64{400, 800, 1200} {
		m, err := base.Resolve(TitanRTX.WithBandwidth(bw))
		if err != nil {
			t.Fatal(err)
		}
		pred, err := m.PredictNetwork(net, TrainBatchSize)
		if err != nil {
			t.Fatal(err)
		}
		if prev != 0 && pred >= prev {
			t.Fatalf("more bandwidth should not be slower: %v then %v", prev, pred)
		}
		prev = pred
	}
	// Hypothetical GPUs work the same way.
	hypo := HypotheticalGPU("future", 2500, 80, 60)
	m, err := base.Resolve(hypo)
	if err != nil {
		t.Fatal(err)
	}
	if p, err := m.PredictNetwork(net, TrainBatchSize); err != nil || p <= 0 {
		t.Fatalf("hypothetical prediction = %v, %v", p, err)
	}
}

func TestFacadeDisagg(t *testing.T) {
	ds := collectSmall(t, []GPU{TitanRTX})
	kw, err := TrainKW(ds, "TITAN RTX")
	if err != nil {
		t.Fatal(err)
	}
	net, err := NetworkByName("resnet50")
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := DisaggJobsFromNetwork(net, 64, kw)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != len(net.Layers) {
		t.Fatalf("jobs = %d, layers = %d", len(jobs), len(net.Layers))
	}
	results, err := SweepDisagg(jobs, DisaggConfig{LinkLatencyUS: 2}, []float64{16, 256})
	if err != nil {
		t.Fatal(err)
	}
	sp := DisaggSpeedups(results)
	if sp[1] < 1 {
		t.Fatalf("speedups = %v", sp)
	}
}

func TestFacadeScheduling(t *testing.T) {
	tm := ScheduleTimes{"A40": {1, 4}, "TITAN RTX": {2, 2}}
	choice, err := ChooseGPU(tm, 2)
	if err != nil {
		t.Fatal(err)
	}
	if choice[0] != "A40" || choice[1] != "TITAN RTX" {
		t.Fatalf("choice = %v", choice)
	}
	plan, err := ScheduleBruteForce(tm, 2)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Makespan != 2 {
		t.Fatalf("makespan = %v", plan.Makespan)
	}
	g, err := ScheduleGreedy(tm, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.Makespan < plan.Makespan {
		t.Fatal("greedy beat brute force")
	}
	span, err := MakespanOf(plan.GPUOf, tm)
	if err != nil || math.Abs(span-plan.Makespan) > 1e-12 {
		t.Fatalf("MakespanOf = %v, %v", span, err)
	}
	inOrder, err := ScheduleGreedyInOrder(tm, 2)
	if err != nil || inOrder.Makespan < plan.Makespan {
		t.Fatalf("GreedyInOrder = %v, %v", inOrder.Makespan, err)
	}
}

func TestFacadeClusterScheduling(t *testing.T) {
	tm := ScheduleTimes{"A40": {1, 4, 3}, "TITAN RTX": {2, 2, 5}}
	dt, err := ScheduleDenseFromTimes(tm, 3)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := ScheduleLowerBound(dt)
	if err != nil || lb <= 0 {
		t.Fatalf("lower bound = %v, %v", lb, err)
	}
	list, err := ScheduleList(dt, 4)
	if err != nil || list.Makespan < lb {
		t.Fatalf("list = %v (lb %v), %v", list.Makespan, lb, err)
	}
	res, err := ScheduleSearch(dt, ScheduleSearchOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan < lb || res.Makespan > list.Makespan+1e-12 {
		t.Fatalf("search makespan %v outside [lb %v, list %v]", res.Makespan, lb, list.Makespan)
	}
	brute, err := ScheduleBruteForce(tm, 3)
	if err != nil || math.Abs(res.Makespan-brute.Makespan) > 1e-12 {
		t.Fatalf("search %v != brute force %v (%v)", res.Makespan, brute.Makespan, err)
	}
	fresh, err := NewScheduleDenseTimes([]string{"A40", "TITAN RTX"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	copy(fresh.Row(0), dt.Row(0))
	copy(fresh.Row(1), dt.Row(1))
	again, err := ScheduleSearch(fresh, ScheduleSearchOptions{Seed: 7})
	if err != nil || again.Makespan != res.Makespan {
		t.Fatalf("dense rebuild diverged: %v vs %v (%v)", again.Makespan, res.Makespan, err)
	}
}

func TestFacadeDatasetPersistence(t *testing.T) {
	ds := collectSmall(t, []GPU{A100})
	dir := filepath.Join(t.TempDir(), "ds")
	if err := ds.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Summary() != ds.Summary() {
		t.Fatalf("round trip: %s vs %s", back.Summary(), ds.Summary())
	}
}

func TestFacadeRegistry(t *testing.T) {
	if len(AllGPUs()) != 7 {
		t.Fatal("GPU registry incomplete")
	}
	if _, err := GPUByName("V100"); err != nil {
		t.Fatal(err)
	}
	if len(Zoo()) != 646 {
		t.Fatalf("zoo = %d", len(Zoo()))
	}
	if len(StandardNetworks()) == 0 {
		t.Fatal("no standard networks")
	}
	n := NewNetwork("custom", "Custom", "image-classification", Shape{3, 64, 64})
	x := n.Conv(-1, 3, 8, 3, 1, 1)
	x = n.ReLU(x)
	n.GlobalAvgPool(x)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}
