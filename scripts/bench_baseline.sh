#!/bin/sh
# Regenerates BENCH_baseline.json: the committed reference numbers for the
# prediction hot path and the lab collection pipeline. Run from the repo root
# on a quiet machine; numbers are indicative (one -benchtime=1000x sample per
# benchmark), meant to catch order-of-magnitude regressions, not 5% drifts.
set -eu

cd "$(dirname "$0")/.."

out=BENCH_baseline.json
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# Plan-layer micro-benchmarks (internal/core), the end-to-end prediction
# benchmarks at the root package, and the serve handler path.
go test -run '^$' -bench 'BenchmarkPlanCompile|BenchmarkKWPredictPlan|BenchmarkKWPredictUncached$|BenchmarkKWPredictParallel|BenchmarkPredictSweep' \
    -benchtime 1000x ./internal/core/ >"$tmp"
go test -run '^$' -bench 'BenchmarkKWPredict$|BenchmarkKWPredictUncachedE2E|BenchmarkKWPredictConcurrent' \
    -benchtime 1000x . >>"$tmp"
go test -run '^$' -bench 'BenchmarkServePredict' \
    -benchtime 1000x ./cmd/dnnperf/ >>"$tmp"
go test -run '^$' -bench 'BenchmarkLabDatasetBuild' -benchtime 3x . >>"$tmp"

# Collection fast path: one Build pass, one detail profile, one stats fit.
go test -run '^$' -bench 'BenchmarkDatasetBuild$' -benchtime 10x ./internal/dataset/ >>"$tmp"
go test -run '^$' -bench 'BenchmarkProfile$' -benchtime 200x ./internal/profiler/ >>"$tmp"
go test -run '^$' -bench 'BenchmarkFitKW$' -benchtime 50x ./internal/core/ >>"$tmp"

# Convert `BenchmarkName-P  N  T ns/op  B B/op  A allocs/op` lines to JSON.
awk 'BEGIN { print "{"; first = 1 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    nsop = ""; bop = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "ns/op") nsop = $i
        if ($(i + 1) == "B/op") bop = $i
        if ($(i + 1) == "allocs/op") allocs = $i
    }
    if (nsop == "") next
    if (!first) printf(",\n")
    first = 0
    printf("  \"%s\": {\"ns_per_op\": %s", name, nsop)
    if (bop != "") printf(", \"bytes_per_op\": %s", bop)
    if (allocs != "") printf(", \"allocs_per_op\": %s", allocs)
    printf("}")
}
END { print "\n}" }' "$tmp" >"$out"

echo "wrote $out:"
cat "$out"
