#!/bin/sh
# Regenerates BENCH_baseline.json: the committed reference numbers for the
# prediction hot path, the lab collection pipeline, and the fleet serving
# tier. Run from the repo root on a quiet machine; numbers are indicative
# (one -benchtime=1000x sample per benchmark, one loadtest run), meant to
# catch order-of-magnitude regressions, not 5% drifts.
#
# Fleet entries (`fleet_throughput_rps`, `fleet_p99_ns`) come from a short
# `dnnperf loadtest` run whose arguments MUST match bench_compare.sh exactly
# — the gate is only meaningful against a baseline measured the same way on
# the same machine.
set -eu

cd "$(dirname "$0")/.."

out=BENCH_baseline.json
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# Plan-layer micro-benchmarks (internal/core), the end-to-end prediction
# benchmarks at the root package, and the serve handler path.
go test -run '^$' -bench 'BenchmarkPlanCompile|BenchmarkKWPredictPlan|BenchmarkKWPredictUncached$|BenchmarkKWPredictParallel|BenchmarkPredictSweep' \
    -benchtime 1000x ./internal/core/ >"$tmp"
go test -run '^$' -bench 'BenchmarkKWPredict$|BenchmarkKWPredictUncachedE2E|BenchmarkKWPredictConcurrent' \
    -benchtime 1000x . >>"$tmp"
go test -run '^$' -bench 'BenchmarkServePredict' \
    -benchtime 1000x ./cmd/dnnperf/ >>"$tmp"
go test -run '^$' -bench 'BenchmarkLabDatasetBuild' -benchtime 3x . >>"$tmp"

# Collection fast path: one Build pass, one detail profile, one stats fit.
go test -run '^$' -bench 'BenchmarkDatasetBuild$' -benchtime 10x ./internal/dataset/ >>"$tmp"
go test -run '^$' -bench 'BenchmarkProfile$' -benchtime 200x ./internal/profiler/ >>"$tmp"
go test -run '^$' -bench 'BenchmarkFitKW$' -benchtime 50x ./internal/core/ >>"$tmp"

# Static-analysis gate cost: a full dnnlint pass over the module. One
# invocation with b.N=3 — cold importer on the first pass, memoized on the
# rest — matching bench_compare.sh exactly.
go test -run '^$' -bench 'BenchmarkDnnlintModule$' -benchtime 3x ./internal/analysis/ >>"$tmp"

# Cluster-scale scheduler: full 10⁵-task search pipeline, map→dense table
# conversion, and the incremental move-evaluation hot path (its allocs/op
# baseline is informational — bench_compare.sh holds it at absolute 0).
go test -run '^$' -bench 'BenchmarkScheduleLocalSearch$' -benchtime 2x ./internal/sched/ >>"$tmp"
go test -run '^$' -bench 'BenchmarkDenseTimesBuild$' -benchtime 20x ./internal/sched/ >>"$tmp"
go test -run '^$' -bench 'BenchmarkScheduleMoveEval$' -benchtime 20000x ./internal/sched/ >>"$tmp"

# Fleet simulator: the discrete-event replay benchmark. Its ns/op and
# allocs/op land in the JSON like every other entry; its events/s custom
# metric becomes the fleetsim_events_per_sec figure bench_compare.sh holds
# the simulator to.
go test -run '^$' -bench 'BenchmarkFleetSimReplay$' -benchtime 10x ./internal/fleetsim/ >>"$tmp"
fleetsim_events="$(awk '/^BenchmarkFleetSimReplay/ {
    for (i = 2; i < NF; i++)
        if ($(i + 1) == "events/s" && (best == "" || $i + 0 > best)) best = $i + 0
} END { print best }' "$tmp")"
if [ -z "$fleetsim_events" ]; then
    echo "bench_baseline: no events/s metric parsed for BenchmarkFleetSimReplay" >&2
    exit 1
fi

# Fleet serving tier: best of three loadtest runs (max throughput, min p99
# — open-loop tail latency on a shared box is dominated by scheduler noise,
# and as with the micro-benchmarks, slowdowns are noise while speedups are
# not). Arguments must match bench_compare.sh.
echo "bench_baseline: running fleet loadtest x3 (2 replicas, 400 rps, 6s)..."
ltout="$(mktemp)"
bin="$(mktemp -d)/dnnperf"
trap 'rm -f "$tmp" "$ltout"; rm -rf "$(dirname "$bin")"' EXIT
go build -o "$bin" ./cmd/dnnperf
fleet_thr=""
fleet_p99=""
run=0
while [ "$run" -lt 3 ]; do
    "$bin" -quick -replicas 2 -max-inflight 256 -rate 400 -duration 6s -warmup 2s -seed 7 loadtest >"$ltout"
    thr="$(sed -n 's/.*"fleet_throughput_rps": \([0-9][0-9.]*\).*/\1/p' "$ltout" | head -1)"
    p99="$(sed -n 's/.*"fleet_p99_ns": \([0-9][0-9]*\).*/\1/p' "$ltout" | head -1)"
    if [ -z "$thr" ] || [ -z "$p99" ]; then
        echo "bench_baseline: loadtest summary missing fleet metrics:" >&2
        cat "$ltout" >&2
        exit 1
    fi
    if [ -z "$fleet_thr" ] || awk "BEGIN { exit !($thr > $fleet_thr) }"; then
        fleet_thr="$thr"
    fi
    if [ -z "$fleet_p99" ] || awk "BEGIN { exit !($p99 < $fleet_p99) }"; then
        fleet_p99="$p99"
    fi
    run=$((run + 1))
done

# Convert `BenchmarkName-P  N  T ns/op  B B/op  A allocs/op` lines to JSON,
# leaving the object open so the fleet entries can be appended.
awk 'BEGIN { print "{"; first = 1 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    nsop = ""; bop = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "ns/op") nsop = $i
        if ($(i + 1) == "B/op") bop = $i
        if ($(i + 1) == "allocs/op") allocs = $i
    }
    if (nsop == "") next
    if (!first) printf(",\n")
    first = 0
    printf("  \"%s\": {\"ns_per_op\": %s", name, nsop)
    if (bop != "") printf(", \"bytes_per_op\": %s", bop)
    if (allocs != "") printf(", \"allocs_per_op\": %s", allocs)
    printf("}")
}
END { printf(",\n") }' "$tmp" >"$out"

printf '  "fleetsim_events_per_sec": {"value": %s},\n' "$fleetsim_events" >>"$out"
printf '  "fleet_throughput_rps": {"value": %s},\n' "$fleet_thr" >>"$out"
printf '  "fleet_p99_ns": {"value": %s}\n}\n' "$fleet_p99" >>"$out"

echo "wrote $out:"
cat "$out"
