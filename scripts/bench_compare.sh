#!/bin/sh
# bench_compare.sh — guards the prediction hot paths against performance
# regressions. Runs the gated benchmarks fresh and compares each ns/op
# against the committed BENCH_baseline.json; any benchmark more than
# BENCH_COMPARE_THRESHOLD percent (default 25) slower than its baseline
# fails the gate.
#
# The gated set covers the cached single-prediction path (KWPredictPlan,
# KWPredictParallel, KWPredict, KWPredictConcurrent), plan compilation
# (PlanCompile), the batch-sweep path (PredictSweep), the serve layer's
# /predict handler (ServePredict), and the collection fast path: one
# dataset.Build pass (DatasetBuild), one detail profile (Profile) and one
# KW fit from sufficient statistics (FitKW). Only the root package's
# LabDatasetBuild stays an ungated order-of-magnitude reference.
set -eu

cd "$(dirname "$0")/.."

baseline=BENCH_baseline.json
threshold="${BENCH_COMPARE_THRESHOLD:-25}"

if [ ! -f "$baseline" ]; then
    echo "bench_compare: $baseline missing; run make bench-baseline first" >&2
    exit 1
fi

raw="$(mktemp)"
fresh="$(mktemp)"
trap 'rm -f "$raw" "$fresh"' EXIT

echo "bench_compare: running gated benchmarks (best of 3)..."
go test -run '^$' -bench 'BenchmarkKWPredictPlan$|BenchmarkKWPredictParallel$|BenchmarkPlanCompile$|BenchmarkPredictSweep$' \
    -benchtime 1000x -count 3 ./internal/core/ >"$raw"
go test -run '^$' -bench 'BenchmarkKWPredict$|BenchmarkKWPredictConcurrent$' \
    -benchtime 1000x -count 3 . >>"$raw"
go test -run '^$' -bench 'BenchmarkServePredict$' \
    -benchtime 1000x -count 3 ./cmd/dnnperf/ >>"$raw"
go test -run '^$' -bench 'BenchmarkDatasetBuild$' \
    -benchtime 10x -count 3 ./internal/dataset/ >>"$raw"
go test -run '^$' -bench 'BenchmarkProfile$' \
    -benchtime 200x -count 3 ./internal/profiler/ >>"$raw"
go test -run '^$' -bench 'BenchmarkFitKW$' \
    -benchtime 50x -count 3 ./internal/core/ >>"$raw"

# `BenchmarkName-P  N  T ns/op ...` -> `BenchmarkName T`, keeping the
# fastest of the repeated runs: the minimum is the standard noise filter
# for micro-benchmarks (slowdowns are noise, speedups are not).
awk '/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    for (i = 2; i < NF; i++) if ($(i + 1) == "ns/op") {
        if (!(name in best) || $i + 0 < best[name]) best[name] = $i + 0
    }
}
END { for (name in best) print name, best[name] }' "$raw" | sort >"$fresh"

if [ ! -s "$fresh" ]; then
    echo "bench_compare: no benchmark results parsed" >&2
    exit 1
fi

fail=0
while read -r name ns; do
    base="$(sed -n "s/.*\"$name\": {\"ns_per_op\": \([0-9][0-9]*\).*/\1/p" "$baseline")"
    if [ -z "$base" ]; then
        echo "  $name: no baseline entry, skipped"
        continue
    fi
    if awk "BEGIN { exit !($ns > $base * (1 + $threshold / 100)) }"; then
        pct="$(awk "BEGIN { printf \"%+.1f\", ($ns / $base - 1) * 100 }")"
        echo "  $name: $ns ns/op vs baseline $base ns/op ($pct% — REGRESSION over ${threshold}%)"
        fail=1
    else
        pct="$(awk "BEGIN { printf \"%+.1f\", ($ns / $base - 1) * 100 }")"
        echo "  $name: $ns ns/op vs baseline $base ns/op ($pct%)"
    fi
done <"$fresh"

if [ "$fail" -ne 0 ]; then
    echo "bench_compare: prediction-path regression detected" >&2
    exit 1
fi
echo "bench_compare: all gated benchmarks within ${threshold}% of baseline"
