#!/bin/sh
# bench_compare.sh — guards the prediction hot paths against performance
# regressions. Runs the gated benchmarks fresh and compares each ns/op
# against the committed BENCH_baseline.json; any benchmark more than
# BENCH_COMPARE_THRESHOLD percent (default 25) slower than its baseline
# fails the gate.
#
# The gated set covers the cached single-prediction path (KWPredictPlan,
# KWPredictParallel, KWPredict, KWPredictConcurrent), plan compilation
# (PlanCompile), the batch-sweep path (PredictSweep), the serve layer's
# /predict handler untraced and traced (ServePredict, ServePredictTraced —
# the traced variant is additionally gated at 0 allocs/op and within a few
# percent of the untraced one; see the tracing gates below), and the
# collection fast path: one
# dataset.Build pass (DatasetBuild), one detail profile (Profile) and one
# KW fit from sufficient statistics (FitKW), and one full dnnlint pass over
# the module (DnnlintModule — the wall-clock cost `make lint` adds to the
# gate). Only the root package's LabDatasetBuild stays an ungated
# order-of-magnitude reference.
#
# The cluster-scale scheduler adds three gates: the full search pipeline
# over a 10⁵-task × 8-GPU instance (ScheduleLocalSearch — ns/op against
# baseline, plus allocs/op within the same threshold so the search cannot
# quietly start allocating per move), the map→dense table conversion
# (DenseTimesBuild), and the incremental move-evaluation hot path
# (ScheduleMoveEval), which is additionally held at an absolute
# 0 allocs/op like the serve handler.
#
# The fleet simulator adds one more gate (FleetSimReplay): the
# discrete-event replay of a 100k-request trace over a 4-GPU fleet —
# ns/op against baseline, absolute 0 allocs/op, a hard ≥1M simulated
# requests/sec single-core floor, and events/sec against the committed
# fleetsim_events_per_sec figure.
#
# The fleet serving tier is gated separately: three short `dnnperf
# loadtest` runs (arguments identical to bench_baseline.sh; best of three —
# max throughput, min p99) are compared against the committed baseline.
# Sustained throughput must not drop more than BENCH_FLEET_THRESHOLD
# percent (default 25) below baseline — open-loop throughput at an
# under-capacity offered rate is stable, so this bound is tight — while
# best-of-three p99 must not rise more than BENCH_FLEET_P99_THRESHOLD
# percent (default 150) above baseline: open-loop tail latency on a shared
# CI box is scheduler-noise-dominated (min-of-3 p99 varies ~2x run to run
# on an otherwise idle machine), so the p99 bound is deliberately loose and
# catches structural regressions — an added lock, a lost fast path — not
# drift. Every run must also complete with zero 5xx and zero transport
# errors.
set -eu

cd "$(dirname "$0")/.."

baseline=BENCH_baseline.json
threshold="${BENCH_COMPARE_THRESHOLD:-25}"

if [ ! -f "$baseline" ]; then
    echo "bench_compare: $baseline missing; run make bench-baseline first" >&2
    exit 1
fi

raw="$(mktemp)"
fresh="$(mktemp)"
trap 'rm -f "$raw" "$fresh"' EXIT

echo "bench_compare: running gated benchmarks (best of 3)..."
go test -run '^$' -bench 'BenchmarkKWPredictPlan$|BenchmarkKWPredictParallel$|BenchmarkPlanCompile$|BenchmarkPredictSweep$' \
    -benchtime 1000x -count 3 ./internal/core/ >"$raw"
go test -run '^$' -bench 'BenchmarkKWPredict$|BenchmarkKWPredictConcurrent$' \
    -benchtime 1000x -count 3 . >>"$raw"
go test -run '^$' -bench 'BenchmarkServePredict$|BenchmarkServePredictTraced$' \
    -benchtime 1000x -count 3 ./cmd/dnnperf/ >>"$raw"
go test -run '^$' -bench 'BenchmarkDatasetBuild$' \
    -benchtime 10x -count 3 ./internal/dataset/ >>"$raw"
go test -run '^$' -bench 'BenchmarkProfile$' \
    -benchtime 200x -count 3 ./internal/profiler/ >>"$raw"
go test -run '^$' -bench 'BenchmarkFitKW$' \
    -benchtime 50x -count 3 ./internal/core/ >>"$raw"
# One invocation with b.N=3 (not -count 3): the first pass pays the cold
# importer, later passes reuse the memoized import graph, and the averaged
# ns/op matches how bench_baseline.sh measures the same benchmark.
go test -run '^$' -bench 'BenchmarkDnnlintModule$' \
    -benchtime 3x ./internal/analysis/ >>"$raw"
go test -run '^$' -bench 'BenchmarkScheduleLocalSearch$' \
    -benchtime 2x -count 3 ./internal/sched/ >>"$raw"
go test -run '^$' -bench 'BenchmarkDenseTimesBuild$' \
    -benchtime 20x -count 3 ./internal/sched/ >>"$raw"
go test -run '^$' -bench 'BenchmarkScheduleMoveEval$' \
    -benchtime 20000x -count 3 ./internal/sched/ >>"$raw"
go test -run '^$' -bench 'BenchmarkFleetSimReplay$' \
    -benchtime 10x -count 3 ./internal/fleetsim/ >>"$raw"

# `BenchmarkName-P  N  T ns/op ...` -> `BenchmarkName T`, keeping the
# fastest of the repeated runs: the minimum is the standard noise filter
# for micro-benchmarks (slowdowns are noise, speedups are not).
awk '/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    for (i = 2; i < NF; i++) if ($(i + 1) == "ns/op") {
        if (!(name in best) || $i + 0 < best[name]) best[name] = $i + 0
    }
}
END { for (name in best) print name, best[name] }' "$raw" | sort >"$fresh"

if [ ! -s "$fresh" ]; then
    echo "bench_compare: no benchmark results parsed" >&2
    exit 1
fi

fail=0
while read -r name ns; do
    base="$(sed -n "s/.*\"$name\": {\"ns_per_op\": \([0-9][0-9]*\).*/\1/p" "$baseline")"
    if [ -z "$base" ]; then
        echo "  $name: no baseline entry, skipped"
        continue
    fi
    if awk "BEGIN { exit !($ns > $base * (1 + $threshold / 100)) }"; then
        pct="$(awk "BEGIN { printf \"%+.1f\", ($ns / $base - 1) * 100 }")"
        echo "  $name: $ns ns/op vs baseline $base ns/op ($pct% — REGRESSION over ${threshold}%)"
        fail=1
    else
        pct="$(awk "BEGIN { printf \"%+.1f\", ($ns / $base - 1) * 100 }")"
        echo "  $name: $ns ns/op vs baseline $base ns/op ($pct%)"
    fi
done <"$fresh"

if [ "$fail" -ne 0 ]; then
    echo "bench_compare: prediction-path regression detected" >&2
    exit 1
fi
echo "bench_compare: all gated benchmarks within ${threshold}% of baseline"

# --- Serve tracing gates. Two absolute invariants on the /predict handler,
# checked from the same runs as the relative gate above:
#   1. zero allocations per steady-state request, with tracing compiled in
#      (worst of the 3 repeats — any alloc is a regression, not noise), and
#   2. the traced variant (sampled 1-in-64 + per-stage histograms) within
#      BENCH_TRACE_THRESHOLD percent (default 5) of the untraced ns/op,
#      best-of-3 against best-of-3 from the same process and machine.
trace_threshold="${BENCH_TRACE_THRESHOLD:-5}"
serve_allocs() {
    awk -v want="$1" '/^Benchmark/ {
        name = $1; sub(/-[0-9]+$/, "", name)
        if (name != want) next
        for (i = 2; i < NF; i++)
            if ($(i + 1) == "allocs/op" && (worst == "" || $i + 0 > worst)) worst = $i + 0
    } END { print worst }' "$raw"
}
trace_fail=0
for b in BenchmarkServePredict BenchmarkServePredictTraced; do
    allocs="$(serve_allocs "$b")"
    if [ -z "$allocs" ]; then
        echo "bench_compare: no allocs/op parsed for $b" >&2
        exit 1
    fi
    if [ "$allocs" != "0" ]; then
        echo "  $b: $allocs allocs/op, want 0 — REGRESSION (hot path allocates)"
        trace_fail=1
    else
        echo "  $b: 0 allocs/op"
    fi
done
plain_ns="$(awk '$1 == "BenchmarkServePredict" { print $2 }' "$fresh")"
traced_ns="$(awk '$1 == "BenchmarkServePredictTraced" { print $2 }' "$fresh")"
if [ -z "$plain_ns" ] || [ -z "$traced_ns" ]; then
    echo "bench_compare: missing ServePredict ns/op for the tracing-overhead gate" >&2
    exit 1
fi
pct="$(awk "BEGIN { printf \"%+.1f\", ($traced_ns / $plain_ns - 1) * 100 }")"
if awk "BEGIN { exit !($traced_ns > $plain_ns * (1 + $trace_threshold / 100)) }"; then
    echo "  tracing overhead: $traced_ns vs $plain_ns ns/op ($pct% — REGRESSION over ${trace_threshold}%)"
    trace_fail=1
else
    echo "  tracing overhead: $traced_ns vs $plain_ns ns/op ($pct%)"
fi
if [ "$trace_fail" -ne 0 ]; then
    echo "bench_compare: serve tracing regression detected" >&2
    exit 1
fi
echo "bench_compare: /predict allocation-free and tracing overhead within ${trace_threshold}%"

# --- Scheduler gates. Two absolute/allocation invariants on top of the
# relative ns/op gate above:
#   1. the incremental move-evaluation hot path stays at 0 allocs/op in
#      steady state (worst of the 3 repeats), and
#   2. the full 10⁵-task search pipeline's allocs/op stays within the
#      relative threshold of baseline — its allocations are per-restart
#      state arrays, so growth means a per-move allocation crept in.
sched_fail=0
moveeval_allocs="$(serve_allocs BenchmarkScheduleMoveEval)"
if [ -z "$moveeval_allocs" ]; then
    echo "bench_compare: no allocs/op parsed for BenchmarkScheduleMoveEval" >&2
    exit 1
fi
if [ "$moveeval_allocs" != "0" ]; then
    echo "  BenchmarkScheduleMoveEval: $moveeval_allocs allocs/op, want 0 — REGRESSION (move evaluation allocates)"
    sched_fail=1
else
    echo "  BenchmarkScheduleMoveEval: 0 allocs/op"
fi
search_allocs="$(serve_allocs BenchmarkScheduleLocalSearch)"
base_search_allocs="$(sed -n 's/.*"BenchmarkScheduleLocalSearch": {[^}]*"allocs_per_op": \([0-9][0-9]*\).*/\1/p' "$baseline")"
if [ -n "$search_allocs" ] && [ -n "$base_search_allocs" ]; then
    if awk "BEGIN { exit !($search_allocs > $base_search_allocs * (1 + $threshold / 100)) }"; then
        echo "  BenchmarkScheduleLocalSearch: $search_allocs allocs/op vs baseline $base_search_allocs — REGRESSION over ${threshold}%"
        sched_fail=1
    else
        echo "  BenchmarkScheduleLocalSearch: $search_allocs allocs/op vs baseline $base_search_allocs"
    fi
else
    echo "  BenchmarkScheduleLocalSearch: no allocs baseline entry, allocs gate skipped"
fi
if [ "$sched_fail" -ne 0 ]; then
    echo "bench_compare: scheduler regression detected" >&2
    exit 1
fi
echo "bench_compare: scheduler move evaluation allocation-free, search allocs within ${threshold}%"

# --- Fleet simulator gates. Three invariants on the discrete-event replay
# hot path, on top of the relative ns/op gate above:
#   1. steady-state Replay stays at absolute 0 allocs/op (worst of the 3
#      repeats) — the event arena, rings and step table are preallocated,
#      so any allocation is a regression, not noise;
#   2. single-core simulated throughput stays at or above 1M requests/sec
#      (best of 3) — the headline capacity-planning speed claim; and
#   3. simulated events/sec (best of 3) does not drop more than the
#      relative threshold below the committed fleetsim_events_per_sec
#      baseline figure.
fleetsim_metric() {
    awk -v unit="$1" '/^BenchmarkFleetSimReplay/ {
        for (i = 2; i < NF; i++)
            if ($(i + 1) == unit && (best == "" || $i + 0 > best)) best = $i + 0
    } END { print best }' "$raw"
}
fleetsim_fail=0
sim_allocs="$(serve_allocs BenchmarkFleetSimReplay)"
if [ -z "$sim_allocs" ]; then
    echo "bench_compare: no allocs/op parsed for BenchmarkFleetSimReplay" >&2
    exit 1
fi
if [ "$sim_allocs" != "0" ]; then
    echo "  BenchmarkFleetSimReplay: $sim_allocs allocs/op, want 0 — REGRESSION (event loop allocates)"
    fleetsim_fail=1
else
    echo "  BenchmarkFleetSimReplay: 0 allocs/op"
fi
sim_reqs="$(fleetsim_metric req/s)"
sim_events="$(fleetsim_metric events/s)"
if [ -z "$sim_reqs" ] || [ -z "$sim_events" ]; then
    echo "bench_compare: no req/s / events/s metrics parsed for BenchmarkFleetSimReplay" >&2
    exit 1
fi
if awk "BEGIN { exit !($sim_reqs < 1000000) }"; then
    echo "  fleetsim_requests_per_sec: $sim_reqs, want >= 1000000 — REGRESSION (simulated throughput floor)"
    fleetsim_fail=1
else
    echo "  fleetsim_requests_per_sec: $sim_reqs (floor 1000000)"
fi
base_events="$(sed -n 's/.*"fleetsim_events_per_sec": {"value": \([0-9][0-9.e+]*\)}.*/\1/p' "$baseline")"
if [ -z "$base_events" ]; then
    echo "  fleetsim_events_per_sec: no baseline entry, relative gate skipped (run make bench-baseline to add it)"
else
    pct="$(awk "BEGIN { printf \"%+.1f\", ($sim_events / $base_events - 1) * 100 }")"
    if awk "BEGIN { exit !($sim_events < $base_events * (1 - $threshold / 100)) }"; then
        echo "  fleetsim_events_per_sec: $sim_events vs baseline $base_events ($pct% — REGRESSION over ${threshold}%)"
        fleetsim_fail=1
    else
        echo "  fleetsim_events_per_sec: $sim_events vs baseline $base_events ($pct%)"
    fi
fi
if [ "$fleetsim_fail" -ne 0 ]; then
    echo "bench_compare: fleet simulator regression detected" >&2
    exit 1
fi
echo "bench_compare: fleetsim replay allocation-free, >=1M req/s, events/s within ${threshold}%"

# --- Fleet serving gate: throughput and p99 from live loadtest runs.
fleet_threshold="${BENCH_FLEET_THRESHOLD:-25}"
fleet_p99_threshold="${BENCH_FLEET_P99_THRESHOLD:-150}"
base_thr="$(sed -n 's/.*"fleet_throughput_rps": {"value": \([0-9][0-9.]*\)}.*/\1/p' "$baseline")"
base_p99="$(sed -n 's/.*"fleet_p99_ns": {"value": \([0-9][0-9]*\)}.*/\1/p' "$baseline")"
if [ -z "$base_thr" ] || [ -z "$base_p99" ]; then
    echo "bench_compare: no fleet baseline entries, fleet gate skipped (run make bench-baseline to add them)"
    exit 0
fi

echo "bench_compare: running fleet loadtest gate x3 (2 replicas, 400 rps, 6s)..."
ltout="$(mktemp)"
bin="$(mktemp -d)/dnnperf"
trap 'rm -f "$raw" "$fresh" "$ltout"; rm -rf "$(dirname "$bin")"' EXIT
go build -o "$bin" ./cmd/dnnperf

ltfield() {
    sed -n "s/.*\"$1\": \([0-9][0-9.]*\).*/\1/p" "$ltout" | head -1
}

thr=""
p99=""
run=0
while [ "$run" -lt 3 ]; do
    "$bin" -quick -replicas 2 -max-inflight 256 -rate 400 -duration 6s -warmup 2s -seed 7 loadtest >"$ltout"
    run_thr="$(ltfield fleet_throughput_rps)"
    run_p99="$(ltfield fleet_p99_ns)"
    s5xx="$(ltfield status_5xx)"
    neterr="$(ltfield net_errors)"
    if [ -z "$run_thr" ] || [ -z "$run_p99" ]; then
        echo "bench_compare: loadtest summary missing fleet metrics:" >&2
        cat "$ltout" >&2
        exit 1
    fi
    if [ "$s5xx" != "0" ] || [ "$neterr" != "0" ]; then
        echo "bench_compare: fleet loadtest had failures: status_5xx=$s5xx net_errors=$neterr" >&2
        cat "$ltout" >&2
        exit 1
    fi
    if [ -z "$thr" ] || awk "BEGIN { exit !($run_thr > $thr) }"; then
        thr="$run_thr"
    fi
    if [ -z "$p99" ] || awk "BEGIN { exit !($run_p99 < $p99) }"; then
        p99="$run_p99"
    fi
    run=$((run + 1))
done

fleet_fail=0
if awk "BEGIN { exit !($thr < $base_thr * (1 - $fleet_threshold / 100)) }"; then
    pct="$(awk "BEGIN { printf \"%+.1f\", ($thr / $base_thr - 1) * 100 }")"
    echo "  fleet_throughput_rps: $thr vs baseline $base_thr ($pct% — REGRESSION over ${fleet_threshold}%)"
    fleet_fail=1
else
    pct="$(awk "BEGIN { printf \"%+.1f\", ($thr / $base_thr - 1) * 100 }")"
    echo "  fleet_throughput_rps: $thr vs baseline $base_thr ($pct%)"
fi
if awk "BEGIN { exit !($p99 > $base_p99 * (1 + $fleet_p99_threshold / 100)) }"; then
    pct="$(awk "BEGIN { printf \"%+.1f\", ($p99 / $base_p99 - 1) * 100 }")"
    echo "  fleet_p99_ns: $p99 vs baseline $base_p99 ($pct% — REGRESSION over ${fleet_p99_threshold}%)"
    fleet_fail=1
else
    pct="$(awk "BEGIN { printf \"%+.1f\", ($p99 / $base_p99 - 1) * 100 }")"
    echo "  fleet_p99_ns: $p99 vs baseline $base_p99 ($pct%)"
fi

if [ "$fleet_fail" -ne 0 ]; then
    echo "bench_compare: fleet serving regression detected" >&2
    exit 1
fi
echo "bench_compare: fleet throughput within ${fleet_threshold}% and p99 within ${fleet_p99_threshold}% of baseline, zero 5xx"
