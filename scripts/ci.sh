#!/usr/bin/env sh
# ci.sh — the pre-merge gate, invoked by `make verify` and CI.
#
# Commands, in dependency order:
#   1. go vet           — toolchain-level static checks
#   2. dnnlint          — the repo's own invariants (internal/analysis):
#                         detrange, unitsafe, floateq, locksafe, staleplan,
#                         allocfree, goroleak, httpcontract
#   3. go test -race    — the full suite under the race detector
#   4. serve smoke test — boot `dnnperf serve`, hit /healthz and /metrics;
#                         then a 2-replica fleet: routing, 429 backpressure,
#                         whole-fleet graceful drain
#   5. loadtest smoke   — `dnnperf loadtest` drives a 2-replica fleet for
#                         ~2s; non-zero throughput, zero 5xx required
#   6. fleetsim smoke   — `dnnperf fleetsim` replays a 10k-request trace
#                         against the simulated fleet; every request served
#                         with monotone percentiles, plus a capacity sweep
#   7. bench compare    — cached-predict benchmarks vs BENCH_baseline.json
#                         (>25% ns/op regression fails) plus the fleet
#                         throughput/p99 gate (BENCH_FLEET_THRESHOLD) and
#                         the fleetsim replay gate (0 allocs/op, ≥1M
#                         simulated requests/sec single-core)
#
# Followed by the lint self-test: seed known violations (one per
# representative analyzer) into a scratch copy of the module and require
# dnnlint to fail with the right finding and the right exit code (0 clean,
# 1 findings, 2 load error), so a silently broken analyzer or a conflated
# exit path cannot green-light the gate.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

echo "== dnnlint"
go run ./cmd/dnnlint ./...

echo "== go test -race"
go test -race ./...

echo "== serve smoke test"
./scripts/serve_smoke.sh

echo "== loadtest smoke test"
./scripts/loadtest_smoke.sh

echo "== fleetsim smoke test"
./scripts/fleetsim_smoke.sh

echo "== bench compare"
./scripts/bench_compare.sh

echo "== dnnlint self-test"
./scripts/lint_selftest.sh

echo "ci: all gates passed"
