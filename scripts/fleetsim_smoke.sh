#!/bin/sh
# fleetsim_smoke.sh — the fleet simulator's CI smoke: replays a 10k-request
# Poisson trace against a simulated heterogeneous 4-GPU fleet through
# `dnnperf fleetsim` and requires every request served with non-empty,
# monotone latency percentiles, then fans a 2-cell capacity sweep to prove
# the grid path composes. Runs off the synthetic step-time oracle, so the
# whole smoke is milliseconds of simulated-time replay — no HTTP, no model
# fitting.
set -eu

cd "$(dirname "$0")/.."

bin="$(mktemp -d)/dnnperf"
out="$(mktemp)"

cleanup() {
    rm -f "$out"
    rm -rf "$(dirname "$bin")"
}
trap cleanup EXIT

echo "fleetsim_smoke: building dnnperf..."
go build -o "$bin" ./cmd/dnnperf

echo "fleetsim_smoke: 4-replica fleet, 10k-request poisson trace..."
"$bin" -fleet-size 4 -rate 300 -requests 10000 -max-batch 8 -seed 7 fleetsim >"$out"

field() {
    sed -n "s/.*\"$1\": \([0-9][0-9.e+-]*\).*/\1/p" "$out" | head -1
}

requests="$(field requests)"
unfinished="$(field unfinished)"
p50="$(field p50_s)"
p99="$(field p99_s)"
p999="$(field p999_s)"

if [ -z "$requests" ] || [ -z "$p50" ] || [ -z "$p99" ] || [ -z "$p999" ]; then
    echo "fleetsim_smoke: summary missing expected keys:" >&2
    cat "$out" >&2
    exit 1
fi
if [ "$requests" != "10000" ] || [ "$unfinished" != "0" ]; then
    echo "fleetsim_smoke: served $requests requests with $unfinished unfinished, want 10000/0" >&2
    cat "$out" >&2
    exit 1
fi
if ! awk "BEGIN { exit !($p50 > 0 && $p99 >= $p50 && $p999 >= $p99) }"; then
    echo "fleetsim_smoke: percentiles empty or non-monotone: p50=$p50 p99=$p99 p999=$p999" >&2
    cat "$out" >&2
    exit 1
fi

echo "fleetsim_smoke: capacity sweep 2,4 replicas at 300 rps..."
"$bin" -sweep-fleet 2,4 -rate 300 -requests 2000 -seed 7 -p99-target 10s fleetsim >"$out"
answer="$(sed -n 's/.*"r300-jsq": \([0-9-][0-9]*\).*/\1/p' "$out" | head -1)"
if [ -z "$answer" ] || [ "$answer" = "-1" ]; then
    echo "fleetsim_smoke: capacity sweep gave no fleet answer:" >&2
    cat "$out" >&2
    exit 1
fi

echo "fleetsim_smoke: 10000 requests replayed, p50=${p50}s p99=${p99}s, capacity answer ${answer} replicas"
