#!/usr/bin/env sh
# lint_selftest.sh — proves the lint gate actually gates.
#
# Copies the module into a scratch directory, seeds a detrange violation
# (float accumulation over an unsorted map range) into internal/core, and
# requires dnnlint to exit non-zero there. If the analyzers ever regress to
# finding nothing, this script fails `make verify` instead of letting the
# gate silently pass everything.
set -eu

cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT INT TERM

# Copy the module without VCS metadata.
tar --exclude .git -cf - . | (cd "$tmp" && tar -xf -)

cat > "$tmp/internal/core/seeded_violation.go" <<'EOF'
package core

// seededLintViolation exists only while scripts/lint_selftest.sh runs: it
// folds floats in map-iteration order, which dnnlint must report.
func seededLintViolation(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v
	}
	return total
}
EOF

if (cd "$tmp" && go run ./cmd/dnnlint ./internal/core) >"$tmp/lint.out" 2>&1; then
	echo "lint_selftest: FAIL — dnnlint passed a seeded detrange violation" >&2
	cat "$tmp/lint.out" >&2
	exit 1
fi

if ! grep -q 'detrange' "$tmp/lint.out"; then
	echo "lint_selftest: FAIL — dnnlint failed without a detrange finding:" >&2
	cat "$tmp/lint.out" >&2
	exit 1
fi

echo "lint_selftest: ok (seeded violation caught)"
