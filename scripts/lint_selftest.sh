#!/usr/bin/env sh
# lint_selftest.sh — proves the lint gate actually gates.
#
# Copies the module into a scratch directory and drives dnnlint through its
# whole contract:
#
#   - the pristine copy exits 0;
#   - one seeded violation per representative analyzer (detrange, allocfree,
#     goroleak, httpcontract) makes dnnlint exit 1 with the right finding;
#   - a well-formed //lint:ignore directive silences a seeded finding
#     (exit 0) while a bare directive without a reason is itself reported
#     (exit 1 with a `suppress` finding);
#   - a file that fails to type-check exits 2 (load error), not 1.
#
# If an analyzer ever regresses to finding nothing, or the exit codes
# conflate findings with load failures, this script fails `make verify`
# instead of letting the gate silently pass everything.
set -eu

cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT INT TERM

# Copy the module without VCS metadata.
tar --exclude .git -cf - . | (cd "$tmp" && tar -xf -)

# Build the driver once and invoke the binary directly: `go run` collapses
# every non-zero child status to its own exit 1, which would hide the very
# findings-vs-load-error distinction this script asserts.
bin="$tmp/dnnlint.bin"
(cd "$tmp" && go build -o "$bin" ./cmd/dnnlint)

# lint runs dnnlint in the scratch module and records its exit code in $rc.
lint() {
    rc=0
    (cd "$tmp" && "$bin" "$@") >"$tmp/lint.out" 2>&1 || rc=$?
}

fail() {
    echo "lint_selftest: FAIL — $1" >&2
    cat "$tmp/lint.out" >&2
    exit 1
}

require_rc() { # expected-exit-code description
    [ "$rc" -eq "$1" ] || fail "$2 (exit $rc, want $1)"
}

require_finding() { # pattern description
    grep -q "$1" "$tmp/lint.out" || fail "$2"
}

# --- 0. The pristine copy lints clean: exit 0.
lint ./...
require_rc 0 "pristine module did not lint clean"

# --- 1. detrange: float fold over an unsorted map range.
cat > "$tmp/internal/core/seeded_violation.go" <<'EOF'
package core

// seededLintViolation exists only while scripts/lint_selftest.sh runs: it
// folds floats in map-iteration order, which dnnlint must report.
func seededLintViolation(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v
	}
	return total
}
EOF
lint ./internal/core
require_rc 1 "seeded detrange violation not reported as findings"
require_finding detrange "dnnlint failed without a detrange finding"

# --- 1a. A well-formed suppression silences the seed: exit 0.
cat > "$tmp/internal/core/seeded_violation.go" <<'EOF'
package core

// seededLintViolation carries a well-formed suppression directive.
func seededLintViolation(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		//lint:ignore detrange selftest: directive with a reason must suppress
		total += v
	}
	return total
}
EOF
lint ./internal/core
require_rc 0 "well-formed //lint:ignore did not suppress the seeded finding"

# --- 1b. A bare directive (no reason) is itself a finding and suppresses
# nothing: exit 1 with both `suppress` and the surviving detrange finding.
cat > "$tmp/internal/core/seeded_violation.go" <<'EOF'
package core

// seededLintViolation carries a malformed (reason-less) directive.
func seededLintViolation(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		//lint:ignore detrange
		total += v
	}
	return total
}
EOF
lint ./internal/core
require_rc 1 "bare //lint:ignore did not fail the gate"
require_finding suppress "bare directive not reported as a suppress finding"
require_finding detrange "bare directive wrongly suppressed the seeded finding"
rm "$tmp/internal/core/seeded_violation.go"

# --- 2. allocfree: un-evidenced append inside an annotated function.
cat > "$tmp/internal/core/seeded_violation.go" <<'EOF'
package core

// seededAllocViolation grows a slice with no preallocation evidence on a
// declared alloc-free path.
//
//dnnperf:allocfree
func seededAllocViolation(xs []int, v int) []int {
	return append(xs, v)
}
EOF
lint ./internal/core
require_rc 1 "seeded allocfree violation not reported as findings"
require_finding allocfree "dnnlint failed without an allocfree finding"
rm "$tmp/internal/core/seeded_violation.go"

# --- 3. goroleak: goroutine with no termination path.
cat > "$tmp/internal/core/seeded_violation.go" <<'EOF'
package core

// seededGoroutineLeak spawns an unbounded loop with no cancellation and no
// join in the spawner.
func seededGoroutineLeak(ch chan int) {
	go func() {
		for {
			ch <- 1
		}
	}()
}
EOF
lint ./internal/core
require_rc 1 "seeded goroleak violation not reported as findings"
require_finding goroleak "dnnlint failed without a goroleak finding"
rm "$tmp/internal/core/seeded_violation.go"

# --- 4. httpcontract: uncapped body read plus a double status commit.
cat > "$tmp/cmd/dnnperf/seeded_violation.go" <<'EOF'
package main

import (
	"io"
	"net/http"
)

// seededContractViolation reads an uncapped body and commits the status
// twice.
func seededContractViolation(w http.ResponseWriter, req *http.Request) {
	b, _ := io.ReadAll(req.Body)
	w.WriteHeader(http.StatusOK)
	w.WriteHeader(http.StatusInternalServerError)
	_, _ = w.Write(b)
}
EOF
lint ./cmd/dnnperf
require_rc 1 "seeded httpcontract violation not reported as findings"
require_finding httpcontract "dnnlint failed without an httpcontract finding"
rm "$tmp/cmd/dnnperf/seeded_violation.go"

# --- 5. A file that does not type-check is a load error: exit 2, not 1.
cat > "$tmp/internal/core/seeded_violation.go" <<'EOF'
package core

func seededTypeError() int { return "not an int" }
EOF
lint ./internal/core
require_rc 2 "type-check failure did not exit with the load-error status"
require_finding "failed to load" "load failure not reported on stderr"
rm "$tmp/internal/core/seeded_violation.go"

echo "lint_selftest: ok (exit codes 0/1/2, four seeded analyzers, suppression contract)"
