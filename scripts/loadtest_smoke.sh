#!/bin/sh
# loadtest_smoke.sh — the fleet serving tier's CI smoke: boots a 2-replica
# fleet through `dnnperf loadtest`, drives ~2s of open-loop Poisson traffic
# at the proxy, and requires the summary to show non-zero sustained
# throughput with zero 5xx responses and zero transport errors. This is the
# cheap end-to-end proof that replica spawning, readiness probing,
# consistent-hash routing and the load generator all still compose.
#
# The run also writes a merged Perfetto trace of the proxy and both
# replicas to $LOADTEST_SMOKE_TRACE (default fleet_trace.json in the repo
# root) so CI can publish it as an artifact; open it at ui.perfetto.dev.
set -eu

cd "$(dirname "$0")/.."

bin="$(mktemp -d)/dnnperf"
log="$(mktemp)"
out="$(mktemp)"
trace="${LOADTEST_SMOKE_TRACE:-fleet_trace.json}"

cleanup() {
    rm -f "$log" "$out"
    rm -rf "$(dirname "$bin")"
}
trap cleanup EXIT

echo "loadtest_smoke: building dnnperf..."
go build -o "$bin" ./cmd/dnnperf

echo "loadtest_smoke: 2-replica fleet, 200 rps poisson for 2.5s..."
if ! "$bin" -quick -replicas 2 -rate 200 -duration 2500ms -warmup 500ms -seed 7 -trace-o "$trace" loadtest >"$out" 2>"$log"; then
    echo "loadtest_smoke: loadtest run failed:" >&2
    cat "$log" >&2
    exit 1
fi

field() {
    sed -n "s/.*\"$1\": \([0-9][0-9.]*\).*/\1/p" "$out" | head -1
}

thr="$(field fleet_throughput_rps)"
s5xx="$(field status_5xx)"
neterr="$(field net_errors)"
sent="$(field sent)"

if [ -z "$thr" ] || [ -z "$s5xx" ] || [ -z "$neterr" ]; then
    echo "loadtest_smoke: summary missing expected keys:" >&2
    cat "$out" >&2
    exit 1
fi
if ! awk "BEGIN { exit !($thr > 0) }"; then
    echo "loadtest_smoke: fleet_throughput_rps = $thr, want > 0" >&2
    cat "$out" >&2
    exit 1
fi
if [ "$s5xx" != "0" ] || [ "$neterr" != "0" ]; then
    echo "loadtest_smoke: failures under load: status_5xx=$s5xx net_errors=$neterr" >&2
    cat "$out" >&2
    exit 1
fi

if [ ! -s "$trace" ] || ! grep -q '"process_name"' "$trace"; then
    echo "loadtest_smoke: merged fleet trace $trace missing or malformed" >&2
    exit 1
fi

echo "loadtest_smoke: $sent requests, ${thr} rps sustained, zero 5xx, zero transport errors"
echo "loadtest_smoke: merged fleet trace written to $trace (open at ui.perfetto.dev)"
