#!/bin/sh
# serve_smoke.sh — boots `dnnperf serve` and verifies the telemetry surface
# answers: /healthz must return 200 promptly (liveness is independent of the
# model warm-up) and /metrics must emit Prometheus text containing the obs
# registry's serve counters. The server is killed afterwards regardless.
set -eu

cd "$(dirname "$0")/.."

addr="${SERVE_SMOKE_ADDR:-localhost:18097}"
bin="$(mktemp -d)/dnnperf"
log="$(mktemp)"
pid=""

cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -f "$log"
    rm -rf "$(dirname "$bin")"
}
trap cleanup EXIT

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -fsS --max-time 5 "$1"
    else
        wget -q -T 5 -O - "$1"
    fi
}

echo "serve_smoke: building dnnperf..."
go build -o "$bin" ./cmd/dnnperf

"$bin" -quick -addr "$addr" serve >"$log" 2>&1 &
pid=$!

ok=0
i=0
while [ "$i" -lt 40 ]; do
    if fetch "http://$addr/healthz" >/dev/null 2>&1; then
        ok=1
        break
    fi
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "serve_smoke: server exited early:" >&2
        cat "$log" >&2
        exit 1
    fi
    sleep 0.25
    i=$((i + 1))
done
if [ "$ok" -ne 1 ]; then
    echo "serve_smoke: /healthz did not come up within 10s" >&2
    cat "$log" >&2
    exit 1
fi

health="$(fetch "http://$addr/healthz")"
case "$health" in
*'"status"'*) : ;;
*)
    echo "serve_smoke: unexpected /healthz body: $health" >&2
    exit 1
    ;;
esac

metrics="$(fetch "http://$addr/metrics")"
case "$metrics" in
*serve_requests_total*) : ;;
*)
    echo "serve_smoke: /metrics missing serve_requests_total:" >&2
    printf '%s\n' "$metrics" | head -5 >&2
    exit 1
    ;;
esac

fetch "http://$addr/metrics.json" >/dev/null

kill "$pid"
wait "$pid" 2>/dev/null || true
pid=""
echo "serve_smoke: /healthz, /metrics and /metrics.json all answered"
