#!/bin/sh
# serve_smoke.sh — boots `dnnperf serve` and verifies the serving surface
# end to end: /healthz must return 200 promptly (liveness is independent of
# the model warm-up), /metrics must emit Prometheus text containing the obs
# registry's serve counters, and once the model is warm both /predict and
# /predict/batch (GET and POST) must answer with predictions. Finally the
# server must exit 0 on SIGTERM — the graceful-shutdown contract.
set -eu

cd "$(dirname "$0")/.."

addr="${SERVE_SMOKE_ADDR:-localhost:18097}"
bin="$(mktemp -d)/dnnperf"
log="$(mktemp)"
pid=""

cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -f "$log"
    rm -rf "$(dirname "$bin")"
}
trap cleanup EXIT

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -fsS --max-time 10 "$1"
    else
        wget -q -T 10 -O - "$1"
    fi
}

post() {
    if command -v curl >/dev/null 2>&1; then
        curl -fsS --max-time 10 -H 'Content-Type: application/json' -d "$2" "$1"
    else
        wget -q -T 10 -O - --header 'Content-Type: application/json' --post-data "$2" "$1"
    fi
}

echo "serve_smoke: building dnnperf..."
go build -o "$bin" ./cmd/dnnperf

"$bin" -quick -addr "$addr" serve >"$log" 2>&1 &
pid=$!

ok=0
i=0
while [ "$i" -lt 40 ]; do
    if fetch "http://$addr/healthz" >/dev/null 2>&1; then
        ok=1
        break
    fi
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "serve_smoke: server exited early:" >&2
        cat "$log" >&2
        exit 1
    fi
    sleep 0.25
    i=$((i + 1))
done
if [ "$ok" -ne 1 ]; then
    echo "serve_smoke: /healthz did not come up within 10s" >&2
    cat "$log" >&2
    exit 1
fi

health="$(fetch "http://$addr/healthz")"
case "$health" in
*'"status"'*) : ;;
*)
    echo "serve_smoke: unexpected /healthz body: $health" >&2
    exit 1
    ;;
esac

metrics="$(fetch "http://$addr/metrics")"
case "$metrics" in
*serve_requests_total*) : ;;
*)
    echo "serve_smoke: /metrics missing serve_requests_total:" >&2
    printf '%s\n' "$metrics" | head -5 >&2
    exit 1
    ;;
esac

fetch "http://$addr/metrics.json" >/dev/null

# Wait for the background model fit so the predict endpoints can answer.
ok=0
i=0
while [ "$i" -lt 240 ]; do
    health="$(fetch "http://$addr/healthz")"
    case "$health" in
    *'"model_ready": true'*)
        ok=1
        break
        ;;
    *'"status": "degraded"'*)
        echo "serve_smoke: model fit failed: $health" >&2
        exit 1
        ;;
    esac
    sleep 0.5
    i=$((i + 1))
done
if [ "$ok" -ne 1 ]; then
    echo "serve_smoke: model not ready within 120s" >&2
    cat "$log" >&2
    exit 1
fi

pred="$(fetch "http://$addr/predict?network=resnet50&batch=64")"
case "$pred" in
*'"predicted_ms"'*) : ;;
*)
    echo "serve_smoke: unexpected /predict body: $pred" >&2
    exit 1
    ;;
esac

batch_get="$(fetch "http://$addr/predict/batch?network=resnet50&batches=1,2,4")"
case "$batch_get" in
*'"predicted_ms":['*) : ;;
*)
    echo "serve_smoke: unexpected GET /predict/batch body: $batch_get" >&2
    exit 1
    ;;
esac

batch_post="$(post "http://$addr/predict/batch" '{"network": "resnet18", "batches": [1, 8]}')"
case "$batch_post" in
*'"predicted_ms":['*) : ;;
*)
    echo "serve_smoke: unexpected POST /predict/batch body: $batch_post" >&2
    exit 1
    ;;
esac

# SIGTERM must drain and exit cleanly (status 0), not die on the signal.
kill "$pid"
status=0
wait "$pid" || status=$?
pid=""
if [ "$status" -ne 0 ]; then
    echo "serve_smoke: server exited with status $status on SIGTERM; graceful shutdown broken" >&2
    cat "$log" >&2
    exit 1
fi

echo "serve_smoke: health, metrics, predict, batch predict and graceful shutdown all verified"
