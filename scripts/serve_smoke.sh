#!/bin/sh
# serve_smoke.sh — boots `dnnperf serve` and verifies the serving surface
# end to end: /healthz must return 200 promptly (liveness is independent of
# the model warm-up), /readyz must flip from 503 to 200 when the model
# lands, /metrics must emit Prometheus text containing the obs registry's
# serve counters, and once the model is warm both /predict and
# /predict/batch (GET and POST) must answer with predictions. The server
# must exit 0 on SIGTERM — the graceful-shutdown contract.
#
# A second section boots a 2-replica fleet proxy with a deliberately tiny
# admission cap (-max-inflight 1), verifies routed predictions, provokes a
# 429 Retry-After backpressure response with a concurrent burst, verifies
# the tracing surface (a sampled traceparent's trace ID is echoed in
# X-Trace-Id) and the /metricsz aggregation (merged histogram buckets equal
# the bucket-wise sum of the replica histograms), and checks that SIGTERM
# drains the whole fleet: proxy exits 0 and no replica processes survive it.
set -eu

cd "$(dirname "$0")/.."

addr="${SERVE_SMOKE_ADDR:-localhost:18097}"
fleet_addr="${SERVE_SMOKE_FLEET_ADDR:-localhost:18098}"
bin="$(mktemp -d)/dnnperf"
log="$(mktemp)"
codes="$(mktemp)"
pid=""

cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -f "$log" "$codes"
    rm -rf "$(dirname "$bin")"
}
trap cleanup EXIT

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -fsS --max-time 10 "$1"
    else
        wget -q -T 10 -O - "$1"
    fi
}

post() {
    if command -v curl >/dev/null 2>&1; then
        curl -fsS --max-time 10 -H 'Content-Type: application/json' -d "$2" "$1"
    else
        wget -q -T 10 -O - --header 'Content-Type: application/json' --post-data "$2" "$1"
    fi
}

# code prints only the HTTP status of a GET, without failing the script.
code() {
    if command -v curl >/dev/null 2>&1; then
        curl -s -o /dev/null --max-time 15 -w '%{http_code}\n' "$1" || echo 000
    elif wget -q -T 15 -O /dev/null "$1" 2>/dev/null; then
        echo 200
    else
        echo 000
    fi
}

echo "serve_smoke: building dnnperf..."
go build -o "$bin" ./cmd/dnnperf

"$bin" -quick -addr "$addr" serve >"$log" 2>&1 &
pid=$!

ok=0
i=0
while [ "$i" -lt 40 ]; do
    if fetch "http://$addr/healthz" >/dev/null 2>&1; then
        ok=1
        break
    fi
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "serve_smoke: server exited early:" >&2
        cat "$log" >&2
        exit 1
    fi
    sleep 0.25
    i=$((i + 1))
done
if [ "$ok" -ne 1 ]; then
    echo "serve_smoke: /healthz did not come up within 10s" >&2
    cat "$log" >&2
    exit 1
fi

health="$(fetch "http://$addr/healthz")"
case "$health" in
*'"status"'*) : ;;
*)
    echo "serve_smoke: unexpected /healthz body: $health" >&2
    exit 1
    ;;
esac

metrics="$(fetch "http://$addr/metrics")"
case "$metrics" in
*serve_requests_total*) : ;;
*)
    echo "serve_smoke: /metrics missing serve_requests_total:" >&2
    printf '%s\n' "$metrics" | head -5 >&2
    exit 1
    ;;
esac

fetch "http://$addr/metrics.json" >/dev/null

# Wait for the background model fit so the predict endpoints can answer.
ok=0
i=0
while [ "$i" -lt 240 ]; do
    health="$(fetch "http://$addr/healthz")"
    case "$health" in
    *'"model_ready": true'*)
        ok=1
        break
        ;;
    *'"status": "degraded"'*)
        echo "serve_smoke: model fit failed: $health" >&2
        exit 1
        ;;
    esac
    sleep 0.5
    i=$((i + 1))
done
if [ "$ok" -ne 1 ]; then
    echo "serve_smoke: model not ready within 120s" >&2
    cat "$log" >&2
    exit 1
fi

# With the model warm, the readiness probe must agree with liveness.
ready="$(fetch "http://$addr/readyz")"
case "$ready" in
*'"ready": true'*) : ;;
*)
    echo "serve_smoke: /readyz not ready after model_ready: $ready" >&2
    exit 1
    ;;
esac

pred="$(fetch "http://$addr/predict?network=resnet50&batch=64")"
case "$pred" in
*'"predicted_ms"'*) : ;;
*)
    echo "serve_smoke: unexpected /predict body: $pred" >&2
    exit 1
    ;;
esac

batch_get="$(fetch "http://$addr/predict/batch?network=resnet50&batches=1,2,4")"
case "$batch_get" in
*'"predicted_ms":['*) : ;;
*)
    echo "serve_smoke: unexpected GET /predict/batch body: $batch_get" >&2
    exit 1
    ;;
esac

batch_post="$(post "http://$addr/predict/batch" '{"network": "resnet18", "batches": [1, 8]}')"
case "$batch_post" in
*'"predicted_ms":['*) : ;;
*)
    echo "serve_smoke: unexpected POST /predict/batch body: $batch_post" >&2
    exit 1
    ;;
esac

# SIGTERM must drain and exit cleanly (status 0), not die on the signal.
kill "$pid"
status=0
wait "$pid" || status=$?
pid=""
if [ "$status" -ne 0 ]; then
    echo "serve_smoke: server exited with status $status on SIGTERM; graceful shutdown broken" >&2
    cat "$log" >&2
    exit 1
fi

echo "serve_smoke: single-server health, readiness, metrics, predict and graceful shutdown verified"

# --- Fleet section: sharded proxy, admission backpressure, whole-fleet drain.
echo "serve_smoke: booting 2-replica fleet with max-inflight 1..."
"$bin" -quick -replicas 2 -max-inflight 1 -addr "$fleet_addr" fleet >"$log" 2>&1 &
pid=$!

ok=0
i=0
while [ "$i" -lt 240 ]; do
    health="$(fetch "http://$fleet_addr/healthz" 2>/dev/null || true)"
    case "$health" in
    *'"ready": 2'*)
        ok=1
        break
        ;;
    esac
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "serve_smoke: fleet proxy exited early:" >&2
        cat "$log" >&2
        exit 1
    fi
    sleep 0.5
    i=$((i + 1))
done
if [ "$ok" -ne 1 ]; then
    echo "serve_smoke: fleet replicas not ready within 120s" >&2
    cat "$log" >&2
    exit 1
fi

# A routed prediction through the proxy must succeed once replicas are ready.
pred="$(fetch "http://$fleet_addr/predict?network=resnet50&batch=64")"
case "$pred" in
*'"predicted_ms"'*) : ;;
*)
    echo "serve_smoke: unexpected fleet /predict body: $pred" >&2
    exit 1
    ;;
esac

# Backpressure: with a per-replica in-flight cap of 1, a concurrent burst of
# slow batch sweeps must saturate both replicas and surface at least one 429
# (the proxy spills to the other replica first, then sheds). Several rounds
# guard against scheduling luck on small machines.
batches="$(seq 1 300 | paste -sd, -)"
saw429=0
round=0
while [ "$round" -lt 5 ] && [ "$saw429" -eq 0 ]; do
    : >"$codes"
    burst_pids=""
    j=0
    while [ "$j" -lt 24 ]; do
        code "http://$fleet_addr/predict/batch?network=resnet50&batches=$batches" >>"$codes" &
        burst_pids="$burst_pids $!"
        j=$((j + 1))
    done
    for bp in $burst_pids; do
        wait "$bp" || true
    done
    if grep -q '^429$' "$codes"; then
        saw429=1
    fi
    round=$((round + 1))
done
if [ "$saw429" -ne 1 ]; then
    echo "serve_smoke: no 429 observed from saturated fleet after $round burst rounds:" >&2
    sort "$codes" | uniq -c >&2
    exit 1
fi
if grep -q '^5' "$codes"; then
    echo "serve_smoke: 5xx under burst load:" >&2
    sort "$codes" | uniq -c >&2
    exit 1
fi

# The fleet must recover once the burst drains.
st="$(code "http://$fleet_addr/predict?network=resnet50&batch=64")"
if [ "$st" != "200" ]; then
    echo "serve_smoke: fleet did not recover after burst, /predict -> $st" >&2
    exit 1
fi

# Tracing: a request carrying a sampled traceparent must get its trace ID
# echoed in X-Trace-Id (trace continuation is deterministic, unlike the
# proxy's own 1-in-N head sampling).
tp='00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01'
want_tid='0af7651916cd43dd8448eb211c80319c'
if command -v curl >/dev/null 2>&1; then
    hdrs="$(curl -fsS --max-time 10 -H "traceparent: $tp" -D - -o /dev/null "http://$fleet_addr/predict?network=resnet50&batch=64")"
else
    hdrs="$(wget -q -T 10 -O /dev/null -S --header "traceparent: $tp" "http://$fleet_addr/predict?network=resnet50&batch=64" 2>&1)"
fi
case "$(printf '%s' "$hdrs" | tr 'A-Z' 'a-z')" in
*"x-trace-id: $want_tid"*) : ;;
*)
    echo "serve_smoke: proxy did not echo X-Trace-Id $want_tid for a sampled traceparent:" >&2
    printf '%s\n' "$hdrs" >&2
    exit 1
    ;;
esac

# Merged fleet metrics: every /metricsz bucket of the predict stage
# histogram must equal the sum of the replicas' buckets. The stage metrics
# only move on /predict traffic, which the health prober never sends, so the
# replica scrapes and the merged scrape see identical counters.
workdir="$(dirname "$bin")"
raddrs="$(sed -n 's/^dnnperf fleet: replica [0-9]* serving on \([^ ]*\).*/\1/p' "$log")"
if [ "$(printf '%s\n' "$raddrs" | wc -l)" -ne 2 ]; then
    echo "serve_smoke: expected 2 replica addresses in fleet log, got: $raddrs" >&2
    exit 1
fi
i=0
for ra in $raddrs; do
    i=$((i + 1))
    fetch "http://$ra/metrics.json" >"$workdir/replica$i.json"
done
fetch "http://$fleet_addr/metricsz" >"$workdir/merged.json"

# cums prints the cumulative bucket counts of serve_stage_predict_seconds.
cums() {
    awk '/"name":/ { f = 0 }
         /"name": "serve_stage_predict_seconds"/ { f = 1 }
         f && /"cumulative":/ { gsub(/[^0-9]/, ""); print }' "$1"
}
cums "$workdir/replica1.json" >"$workdir/c1"
cums "$workdir/replica2.json" >"$workdir/c2"
cums "$workdir/merged.json" >"$workdir/cm"
if [ ! -s "$workdir/c1" ] || [ ! -s "$workdir/c2" ] || [ ! -s "$workdir/cm" ]; then
    echo "serve_smoke: serve_stage_predict_seconds missing from a metrics scrape" >&2
    exit 1
fi
if ! paste "$workdir/c1" "$workdir/c2" "$workdir/cm" | awk '{ if ($1 + $2 != $3) exit 1 }'; then
    echo "serve_smoke: /metricsz buckets are not the bucket-wise sum of the replicas:" >&2
    paste "$workdir/c1" "$workdir/c2" "$workdir/cm" >&2
    exit 1
fi
if [ "$(tail -1 "$workdir/cm")" = "0" ]; then
    echo "serve_smoke: merged serve_stage_predict_seconds has zero observations despite predict traffic" >&2
    exit 1
fi

# SIGTERM must drain the proxy AND terminate every spawned replica.
kill "$pid"
status=0
wait "$pid" || status=$?
pid=""
if [ "$status" -ne 0 ]; then
    echo "serve_smoke: fleet proxy exited with status $status on SIGTERM" >&2
    cat "$log" >&2
    exit 1
fi
survivors="$(ps ax -o pid= -o command= 2>/dev/null | grep -F "$bin" | grep -v grep || true)"
if [ -n "$survivors" ]; then
    echo "serve_smoke: replica processes survived fleet shutdown:" >&2
    echo "$survivors" >&2
    exit 1
fi

echo "serve_smoke: fleet routing, 429 backpressure and whole-fleet graceful drain verified"
